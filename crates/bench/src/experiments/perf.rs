//! The `perf` experiment: simulator-throughput baseline for the four
//! representative workload profiles (read-heavy, write-heavy,
//! GC-pressure, fault-injected).
//!
//! Unlike every other experiment this one measures the **simulator**,
//! not the simulated array: events per wall-clock second, wall time per
//! run, and heap allocations per run. Wall-clock is machine-dependent,
//! so `perf` is deliberately *not* registered in [`super::all`] — it
//! would break the byte-identical golden snapshots and the 1-vs-8-thread
//! equality check. It runs through its own `bench perf` subcommand,
//! serially on the main thread so allocation deltas are attributable.
//!
//! The JSON artifact is format-stable (fixed key order, integer
//! fields); the *simulated* fields (`events`, `completed`) are fully
//! deterministic and double as a cheap regression check that a perf PR
//! changed no simulated outcome.
//!
//! Besides the four workload profiles, the suite measures the **sharded
//! event loop**: 64- and 128-cluster topologies swept over 1/2/4/8
//! workers (asserting the simulated outcome is worker-count-invariant),
//! plus a 2-box federation datapoint at 1 vs 8 workers per member.

use std::time::Instant;

use crate::harness::{arr, obj, text, uint, Scale};
use crate::{bench_builder, bench_config, overload_gap_ns, HOT_REGION_PAGES};
use serde_json::Value;
use triplea_core::{
    Array, ArrayConfig, FaultConfig, FlashFaultProfile, IoOp, LaggardPolicy, ManagementMode,
    Simulation, Trace, TraceRequest, VolumeSpec,
};
use triplea_ftl::LogicalPage;
use triplea_sim::{SimTime, SplitMix64};
use triplea_workloads::Microbench;

/// One workload profile of the perf suite.
pub struct PerfProfile {
    /// Profile name (JSON key and table row label).
    pub name: &'static str,
    /// One-line description for the text artifact.
    pub what: &'static str,
    build: Box<dyn Fn(u64, usize) -> (ArrayConfig, Trace)>,
}

/// Measurement of one profile run.
#[derive(Clone, Debug)]
pub struct PerfMeasurement {
    /// Profile name.
    pub name: &'static str,
    /// Host requests replayed.
    pub requests: u64,
    /// Requests completed by the simulated array (deterministic).
    pub completed: u64,
    /// Simulator events processed (deterministic).
    pub events: u64,
    /// Wall-clock nanoseconds for the `Array::run` call.
    pub wall_ns: u64,
    /// `events / wall_ns * 1e9`, rounded down.
    pub events_per_sec: u64,
    /// Heap allocations during the run (0 unless the counting
    /// allocator is installed, as it is in the `bench` binary).
    pub allocations: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// Seed shared by every profile, derived like any experiment seed.
fn perf_seed() -> u64 {
    crate::harness::experiment_seed("perf")
}

/// The four profiles, in artifact order.
pub fn profiles(_scale: Scale) -> Vec<PerfProfile> {
    vec![
        PerfProfile {
            name: "read_heavy",
            what: "4 hot clusters at 1.6x bus overload, 100% reads, paper-baseline array",
            build: Box::new(move |seed, n| {
                let cfg = bench_config();
                let trace = Microbench::read()
                    .hot_clusters(4)
                    .requests(n)
                    .gap_ns(overload_gap_ns(&cfg, 4))
                    .build(&cfg, seed);
                (cfg, trace)
            }),
        },
        PerfProfile {
            name: "write_heavy",
            what: "4 hot clusters, 100% writes over the standard hot regions, paper-baseline array",
            build: Box::new(move |seed, n| {
                let cfg = bench_config();
                let trace = Microbench::write()
                    .hot_clusters(4)
                    .region_pages(HOT_REGION_PAGES)
                    .requests(n)
                    .gap_ns(overload_gap_ns(&cfg, 4))
                    .build(&cfg, seed);
                (cfg, trace)
            }),
        },
        PerfProfile {
            name: "gc_pressure",
            what: "small array, tight free pool, sustained overwrites forcing GC cycles",
            build: Box::new(move |seed, n| {
                let mut cfg = ArrayConfig::small_test();
                cfg.shape.flash.blocks_per_plane = 8;
                cfg.gc_threshold_blocks = 2;
                cfg.opportunistic_gc = true;
                let trace = Microbench::write()
                    .hot_clusters(1)
                    .region_pages(128)
                    .requests(n)
                    .gap_ns(1_000)
                    .build(&cfg, seed);
                (cfg, trace)
            }),
        },
        PerfProfile {
            name: "fault_injected",
            what: "moderate NAND fault rates (ECC retries + grown bad blocks), 2 hot read clusters",
            build: Box::new(move |seed, n| {
                let cfg = bench_builder()
                    .faults(FaultConfig {
                        flash: FlashFaultProfile {
                            read_transient_prob: 0.02,
                            prog_fail_prob: 0.001,
                            erase_fail_prob: 0.001,
                        },
                        seed,
                        ..FaultConfig::default()
                    })
                    .build()
                    .expect("perf fault configuration validates");
                let trace = Microbench::read()
                    .hot_clusters(2)
                    .requests(n)
                    .gap_ns(overload_gap_ns(&cfg, 2))
                    .build(&cfg, seed);
                (cfg, trace)
            }),
        },
    ]
}

/// Runs one profile once and measures it. Trace synthesis happens
/// outside the timed region; only `Array::run` is measured.
pub fn run_profile(profile: &PerfProfile, scale: Scale) -> PerfMeasurement {
    let (cfg, trace) = (profile.build)(perf_seed(), scale.requests);
    // Warm the allocator and page cache with an untimed dry run at 1/10
    // scale so first-touch costs do not pollute the first profile.
    let warm = (profile.build)(perf_seed(), (scale.requests / 10).max(1));
    let _ = Array::new(warm.0, ManagementMode::Autonomic).run(&warm.1);

    let before = triplea_alloc_counter::snapshot();
    let start = Instant::now();
    let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let delta = triplea_alloc_counter::snapshot().since(before);

    let events = report.events_processed();
    PerfMeasurement {
        name: profile.name,
        requests: trace.len() as u64,
        completed: report.completed(),
        events,
        wall_ns,
        events_per_sec: if wall_ns == 0 {
            0
        } else {
            ((events as u128) * 1_000_000_000u128 / wall_ns as u128) as u64
        },
        allocations: delta.allocations,
        alloc_bytes: delta.bytes,
    }
}

/// Runs the whole suite serially, in profile order.
pub fn run_suite(scale: Scale) -> Vec<PerfMeasurement> {
    profiles(scale)
        .iter()
        .map(|p| run_profile(p, scale))
        .collect()
}

// ---------------------------------------------------------------------
// Sharded event-loop scaling: the per-worker-count throughput curve.
// ---------------------------------------------------------------------

/// Worker counts the scaling curve sweeps.
pub const WORKER_SWEEP: [u32; 4] = [1, 2, 4, 8];

/// One topology of the sharded-scaling sweep.
pub struct ScalingTopology {
    /// Row label (`64c` / `128c`).
    pub name: &'static str,
    /// PCI-E switches — one shard domain each.
    pub switches: u32,
    /// Clusters behind each switch.
    pub clusters_per_switch: u32,
}

/// The swept topologies: a 64-cluster array re-cut as 8 domains of 8,
/// and a 128-cluster array as 16 domains of 8 — wider and deeper than
/// the 4×16 paper baseline, so the executor has real domain-level
/// parallelism to mine.
pub fn scaling_topologies() -> Vec<ScalingTopology> {
    vec![
        ScalingTopology {
            name: "64c",
            switches: 8,
            clusters_per_switch: 8,
        },
        ScalingTopology {
            name: "128c",
            switches: 16,
            clusters_per_switch: 8,
        },
    ]
}

/// One `(topology, worker count)` point of the scaling curve.
#[derive(Clone, Debug)]
pub struct ScalingMeasurement {
    /// Topology label.
    pub topology: &'static str,
    /// Total clusters.
    pub clusters: u64,
    /// Shard domains (= switches).
    pub domains: u64,
    /// Worker threads the sharded executor ran with.
    pub workers: u32,
    /// Host requests replayed.
    pub requests: u64,
    /// Completed requests — must be identical at every worker count.
    pub completed: u64,
    /// Simulator events — must be identical at every worker count.
    pub events: u64,
    /// Wall-clock nanoseconds for the run (machine-dependent).
    pub wall_ns: u64,
    /// `events / wall_ns * 1e9`, rounded down.
    pub events_per_sec: u64,
    /// Speedup vs this topology's 1-worker run, in thousandths
    /// (machine-dependent; flat on a single-core host).
    pub speedup_milli: u64,
}

/// Builds a swept topology at `workers` on the otherwise-untouched
/// baseline timing.
fn scaling_config(t: &ScalingTopology, workers: u32) -> ArrayConfig {
    bench_builder()
        .topology(t.switches, t.clusters_per_switch)
        .workers(workers)
        .build()
        .expect("scaling topology validates")
}

/// Uniform 4:1 read:write traffic over the whole address space so every
/// shard domain carries an even share and cross-domain ordering is
/// exercised continuously.
fn scaling_trace(cfg: &ArrayConfig, requests: usize, seed: u64) -> Trace {
    let total = cfg.shape.total_pages();
    let mut rng = SplitMix64::new(seed ^ 0x5CA1E);
    (0..requests)
        .map(|i| {
            let op = if rng.next_below(5) == 0 {
                IoOp::Write
            } else {
                IoOp::Read
            };
            let pages = 1u32 << rng.next_below(3);
            let lpn = rng.next_below(total - pages as u64);
            TraceRequest::new(
                SimTime::from_nanos(i as u64 * 120),
                op,
                LogicalPage(lpn),
                pages,
            )
        })
        .collect()
}

/// Runs the worker sweep over both topologies. Each topology replays
/// the *same* trace at every worker count and asserts the simulated
/// outcome (events, completions) is bit-identical — the wall clock is
/// the only column allowed to move.
pub fn run_scaling(scale: Scale) -> Vec<ScalingMeasurement> {
    let mut out = Vec::new();
    for t in scaling_topologies() {
        let cfg0 = scaling_config(&t, 1);
        let trace = scaling_trace(&cfg0, scale.requests, perf_seed());
        // Untimed warm run at 1/10 scale, as for the profile suite.
        let warm = scaling_trace(&cfg0, (scale.requests / 10).max(1), perf_seed());
        let _ = Array::new(cfg0, ManagementMode::Autonomic).run(&warm);

        let mut base: Option<(u64, u64, u64)> = None;
        for w in WORKER_SWEEP {
            let cfg = scaling_config(&t, w);
            let clusters = (t.switches * t.clusters_per_switch) as u64;
            let start = Instant::now();
            let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
            let wall_ns = start.elapsed().as_nanos().max(1) as u64;
            let (completed, events) = (report.completed(), report.events_processed());
            let wall_1w = match base {
                None => {
                    base = Some((completed, events, wall_ns));
                    wall_ns
                }
                Some((c, e, w1)) => {
                    assert_eq!(
                        (completed, events),
                        (c, e),
                        "{}: simulated outcome drifted at {w} workers",
                        t.name
                    );
                    w1
                }
            };
            out.push(ScalingMeasurement {
                topology: t.name,
                clusters,
                domains: t.switches as u64,
                workers: w,
                requests: trace.len() as u64,
                completed,
                events,
                wall_ns,
                events_per_sec: ((events as u128) * 1_000_000_000u128 / wall_ns as u128) as u64,
                speedup_milli: ((wall_1w as u128) * 1_000 / wall_ns as u128) as u64,
            });
        }
    }
    out
}

/// One point of the federation worker sweep.
#[derive(Clone, Debug)]
pub struct FederationScaling {
    /// Worker threads each member array ran with.
    pub workers: u32,
    /// Member arrays in the federation.
    pub arrays: u32,
    /// Volume requests replayed.
    pub requests: u64,
    /// Completed volume requests — identical at every worker count.
    pub completed: u64,
    /// Chunk fragments routed — identical at every worker count.
    pub fragments: u64,
    /// Wall-clock nanoseconds (machine-dependent).
    pub wall_ns: u64,
    /// Speedup vs the 1-worker run, in thousandths.
    pub speedup_milli: u64,
}

/// Volume pages of the federation scaling point.
const FED_VOLUME_PAGES: u64 = 1 << 18;

/// Runs a 2-box striped federation over one volume trace at 1 and 8
/// workers per member — the first multi-worker `bench federation`
/// datapoint. Asserts the federated outcome is worker-count-invariant.
pub fn run_federation_scaling(scale: Scale) -> Vec<FederationScaling> {
    let mut rng = SplitMix64::new(perf_seed() ^ 0xFED5);
    let trace: Trace = (0..scale.requests)
        .map(|i| {
            let op = if rng.next_below(4) == 0 {
                IoOp::Write
            } else {
                IoOp::Read
            };
            let pages = 1 + rng.next_below(8) as u32;
            let lpn = rng.next_below(FED_VOLUME_PAGES - pages as u64);
            TraceRequest::new(
                SimTime::from_nanos(i as u64 * 400),
                op,
                LogicalPage(lpn),
                pages,
            )
        })
        .collect();
    let run_at = |workers: u32| {
        let fed = Simulation::builder()
            .configure(|c| c.collect_series(false))
            .mode(ManagementMode::Autonomic)
            .with_federation(2)
            .volume(
                VolumeSpec::replicated(2, 1)
                    .chunk_pages(64)
                    .volume_pages(FED_VOLUME_PAGES),
            )
            .policy(LaggardPolicy {
                sla_p99_ns: 0,
                ..LaggardPolicy::default()
            })
            .workers(workers)
            .build()
            .expect("federation scaling configuration validates");
        let start = Instant::now();
        let run = fed.run_verified(&trace);
        let wall_ns = start.elapsed().as_nanos().max(1) as u64;
        run.integrity
            .expect("member FTL integrity survives the federated scaling run");
        (run.report.stats.completed, run.report.stats.fragments, wall_ns)
    };
    let (c1, f1, w1) = run_at(1);
    let (c8, f8, w8) = run_at(8);
    assert_eq!(
        (c1, f1),
        (c8, f8),
        "federated outcome drifted between 1 and 8 workers"
    );
    [(1u32, c1, f1, w1), (8u32, c8, f8, w8)]
        .into_iter()
        .map(|(workers, completed, fragments, wall_ns)| FederationScaling {
            workers,
            arrays: 2,
            requests: scale.requests as u64,
            completed,
            fragments,
            wall_ns,
            speedup_milli: ((w1 as u128) * 1_000 / wall_ns as u128) as u64,
        })
        .collect()
}

/// Renders the measurements as the `results/perf.json` value: fixed key
/// order, integers only, one object per profile / scaling point.
pub fn to_json(
    scale: Scale,
    runs: &[PerfMeasurement],
    scaling: &[ScalingMeasurement],
    federation: &[FederationScaling],
) -> Value {
    obj([
        ("experiment", text("perf")),
        ("requests_per_profile", uint(scale.requests as u64)),
        (
            "profiles",
            arr(runs
                .iter()
                .map(|m| {
                    obj([
                        ("name", text(m.name)),
                        ("requests", uint(m.requests)),
                        ("completed", uint(m.completed)),
                        ("events", uint(m.events)),
                        ("wall_ns", uint(m.wall_ns)),
                        ("events_per_sec", uint(m.events_per_sec)),
                        ("allocations", uint(m.allocations)),
                        ("alloc_bytes", uint(m.alloc_bytes)),
                    ])
                })
                .collect()),
        ),
        (
            "scaling",
            arr(scaling
                .iter()
                .map(|m| {
                    obj([
                        ("topology", text(m.topology)),
                        ("clusters", uint(m.clusters)),
                        ("domains", uint(m.domains)),
                        ("workers", uint(m.workers as u64)),
                        ("requests", uint(m.requests)),
                        ("completed", uint(m.completed)),
                        ("events", uint(m.events)),
                        ("wall_ns", uint(m.wall_ns)),
                        ("events_per_sec", uint(m.events_per_sec)),
                        ("speedup_milli", uint(m.speedup_milli)),
                    ])
                })
                .collect()),
        ),
        (
            "federation_scaling",
            arr(federation
                .iter()
                .map(|m| {
                    obj([
                        ("workers", uint(m.workers as u64)),
                        ("arrays", uint(m.arrays as u64)),
                        ("requests", uint(m.requests)),
                        ("completed", uint(m.completed)),
                        ("fragments", uint(m.fragments)),
                        ("wall_ns", uint(m.wall_ns)),
                        ("speedup_milli", uint(m.speedup_milli)),
                    ])
                })
                .collect()),
        ),
    ])
}

/// Renders the human-readable `results/perf.txt` companion.
pub fn render_text(
    scale: Scale,
    runs: &[PerfMeasurement],
    scaling: &[ScalingMeasurement],
    federation: &[FederationScaling],
) -> String {
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.requests.to_string(),
                m.events.to_string(),
                format!("{:.1}", m.wall_ns as f64 / 1e6),
                format!("{:.2}", m.events_per_sec as f64 / 1e6),
                m.allocations.to_string(),
            ]
        })
        .collect();
    let mut out = crate::harness::fmt_table(
        &format!(
            "Simulator throughput, {} requests per profile (single thread)",
            scale.requests
        ),
        &[
            "Profile",
            "Requests",
            "Events",
            "Wall ms",
            "M events/s",
            "Allocations",
        ],
        &rows,
    );
    out.push('\n');
    for p in profiles(scale) {
        out.push_str(&format!("{:<15} {}\n", p.name, p.what));
    }
    let srows: Vec<Vec<String>> = scaling
        .iter()
        .map(|m| {
            vec![
                m.topology.to_string(),
                m.clusters.to_string(),
                m.domains.to_string(),
                m.workers.to_string(),
                m.events.to_string(),
                format!("{:.1}", m.wall_ns as f64 / 1e6),
                format!("{:.2}", m.events_per_sec as f64 / 1e6),
                format!("{:.2}x", m.speedup_milli as f64 / 1e3),
            ]
        })
        .collect();
    out.push_str(&crate::harness::fmt_table(
        &format!(
            "Sharded event-loop scaling, {} uniform requests per run",
            scale.requests
        ),
        &[
            "Topology",
            "Clusters",
            "Domains",
            "Workers",
            "Events",
            "Wall ms",
            "M events/s",
            "Speedup",
        ],
        &srows,
    ));
    let frows: Vec<Vec<String>> = federation
        .iter()
        .map(|m| {
            vec![
                m.workers.to_string(),
                m.arrays.to_string(),
                m.completed.to_string(),
                m.fragments.to_string(),
                format!("{:.1}", m.wall_ns as f64 / 1e6),
                format!("{:.2}x", m.speedup_milli as f64 / 1e3),
            ]
        })
        .collect();
    out.push_str(&crate::harness::fmt_table(
        "Federation worker sweep, 2 striped boxes",
        &["Workers", "Arrays", "Completed", "Fragments", "Wall ms", "Speedup"],
        &frows,
    ));
    out.push_str(
        "\nwall_ns/events_per_sec/speedup are machine-dependent (flat on a\n\
         single-core host); events/completed/fragments are deterministic,\n\
         invariant to the worker count, and must not change across\n\
         perf-only PRs.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_serializes_at_tiny_scale() {
        let scale = Scale { requests: 200 };
        let runs = run_suite(scale);
        assert_eq!(runs.len(), 4);
        for m in &runs {
            assert_eq!(m.requests, 200, "{}", m.name);
            assert!(m.completed > 0, "{} completed nothing", m.name);
            assert!(m.events >= m.completed, "{} too few events", m.name);
            assert!(m.events_per_sec > 0, "{} zero throughput", m.name);
        }
        let scaling = run_scaling(scale);
        let federation = run_federation_scaling(scale);
        let json =
            serde_json::to_string_pretty(&to_json(scale, &runs, &scaling, &federation)).unwrap();
        assert!(json.contains("\"read_heavy\""));
        assert!(json.contains("\"gc_pressure\""));
        assert!(json.contains("\"64c\""));
        assert!(json.contains("\"128c\""));
        assert!(json.contains("\"federation_scaling\""));
        let txt = render_text(scale, &runs, &scaling, &federation);
        assert!(txt.contains("fault_injected"));
        assert!(txt.contains("Sharded event-loop scaling"));
        assert!(txt.contains("Federation worker sweep"));
    }

    #[test]
    fn scaling_sweep_is_worker_invariant() {
        // `run_scaling` itself asserts events/completed equality across
        // the worker counts; this pins the sweep's shape and that the
        // sharded runs complete real traffic on both topologies.
        let scaling = run_scaling(Scale { requests: 150 });
        assert_eq!(scaling.len(), scaling_topologies().len() * WORKER_SWEEP.len());
        for m in &scaling {
            assert_eq!(m.requests, 150, "{} w{}", m.topology, m.workers);
            assert_eq!(m.completed, 150, "{} w{}", m.topology, m.workers);
            assert!(m.events > m.completed, "{} w{}", m.topology, m.workers);
            assert!(m.speedup_milli > 0);
        }
        assert_eq!(scaling[0].speedup_milli, 1_000, "1-worker row is the unit");
    }

    #[test]
    fn federation_datapoint_is_worker_invariant() {
        let fed = run_federation_scaling(Scale { requests: 120 });
        assert_eq!(fed.len(), 2);
        assert_eq!(fed[0].workers, 1);
        assert_eq!(fed[1].workers, 8);
        assert_eq!(fed[0].completed, 120);
        assert_eq!(fed[0].completed, fed[1].completed);
        assert_eq!(fed[0].fragments, fed[1].fragments);
    }

    #[test]
    fn simulated_outcome_is_deterministic() {
        let scale = Scale { requests: 200 };
        let a = run_suite(scale);
        let b = run_suite(scale);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.events, y.events, "{} events drifted", x.name);
            assert_eq!(x.completed, y.completed, "{} completions drifted", x.name);
        }
    }

    #[test]
    fn gc_profile_actually_collects() {
        // The tight free pool needs ~16k overwrites before a FIMM drops
        // below the GC threshold; smaller runs never collect (verified
        // against the pre-overhaul engine, which behaves identically).
        let scale = Scale { requests: 16_000 };
        let p = profiles(scale);
        let gc = p.iter().find(|p| p.name == "gc_pressure").unwrap();
        let (cfg, trace) = (gc.build)(perf_seed(), scale.requests);
        let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
        assert!(
            report.ftl_stats().gc_erases > 0,
            "gc_pressure profile never triggered GC: {:?}",
            report.ftl_stats()
        );
    }
}
