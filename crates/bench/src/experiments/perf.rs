//! The `perf` experiment: simulator-throughput baseline for the four
//! representative workload profiles (read-heavy, write-heavy,
//! GC-pressure, fault-injected).
//!
//! Unlike every other experiment this one measures the **simulator**,
//! not the simulated array: events per wall-clock second, wall time per
//! run, and heap allocations per run. Wall-clock is machine-dependent,
//! so `perf` is deliberately *not* registered in [`super::all`] — it
//! would break the byte-identical golden snapshots and the 1-vs-8-thread
//! equality check. It runs through its own `bench perf` subcommand,
//! serially on the main thread so allocation deltas are attributable.
//!
//! The JSON artifact is format-stable (fixed key order, integer
//! fields); the *simulated* fields (`events`, `completed`) are fully
//! deterministic and double as a cheap regression check that a perf PR
//! changed no simulated outcome.

use std::time::Instant;

use crate::harness::{arr, obj, text, uint, Scale};
use crate::{bench_builder, bench_config, overload_gap_ns, HOT_REGION_PAGES};
use serde_json::Value;
use triplea_core::{
    Array, ArrayConfig, FaultConfig, FlashFaultProfile, ManagementMode, Trace,
};
use triplea_workloads::Microbench;

/// One workload profile of the perf suite.
pub struct PerfProfile {
    /// Profile name (JSON key and table row label).
    pub name: &'static str,
    /// One-line description for the text artifact.
    pub what: &'static str,
    build: Box<dyn Fn(u64, usize) -> (ArrayConfig, Trace)>,
}

/// Measurement of one profile run.
#[derive(Clone, Debug)]
pub struct PerfMeasurement {
    /// Profile name.
    pub name: &'static str,
    /// Host requests replayed.
    pub requests: u64,
    /// Requests completed by the simulated array (deterministic).
    pub completed: u64,
    /// Simulator events processed (deterministic).
    pub events: u64,
    /// Wall-clock nanoseconds for the `Array::run` call.
    pub wall_ns: u64,
    /// `events / wall_ns * 1e9`, rounded down.
    pub events_per_sec: u64,
    /// Heap allocations during the run (0 unless the counting
    /// allocator is installed, as it is in the `bench` binary).
    pub allocations: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// Seed shared by every profile, derived like any experiment seed.
fn perf_seed() -> u64 {
    crate::harness::experiment_seed("perf")
}

/// The four profiles, in artifact order.
pub fn profiles(_scale: Scale) -> Vec<PerfProfile> {
    vec![
        PerfProfile {
            name: "read_heavy",
            what: "4 hot clusters at 1.6x bus overload, 100% reads, paper-baseline array",
            build: Box::new(move |seed, n| {
                let cfg = bench_config();
                let trace = Microbench::read()
                    .hot_clusters(4)
                    .requests(n)
                    .gap_ns(overload_gap_ns(&cfg, 4))
                    .build(&cfg, seed);
                (cfg, trace)
            }),
        },
        PerfProfile {
            name: "write_heavy",
            what: "4 hot clusters, 100% writes over the standard hot regions, paper-baseline array",
            build: Box::new(move |seed, n| {
                let cfg = bench_config();
                let trace = Microbench::write()
                    .hot_clusters(4)
                    .region_pages(HOT_REGION_PAGES)
                    .requests(n)
                    .gap_ns(overload_gap_ns(&cfg, 4))
                    .build(&cfg, seed);
                (cfg, trace)
            }),
        },
        PerfProfile {
            name: "gc_pressure",
            what: "small array, tight free pool, sustained overwrites forcing GC cycles",
            build: Box::new(move |seed, n| {
                let mut cfg = ArrayConfig::small_test();
                cfg.shape.flash.blocks_per_plane = 8;
                cfg.gc_threshold_blocks = 2;
                cfg.opportunistic_gc = true;
                let trace = Microbench::write()
                    .hot_clusters(1)
                    .region_pages(128)
                    .requests(n)
                    .gap_ns(1_000)
                    .build(&cfg, seed);
                (cfg, trace)
            }),
        },
        PerfProfile {
            name: "fault_injected",
            what: "moderate NAND fault rates (ECC retries + grown bad blocks), 2 hot read clusters",
            build: Box::new(move |seed, n| {
                let cfg = bench_builder()
                    .faults(FaultConfig {
                        flash: FlashFaultProfile {
                            read_transient_prob: 0.02,
                            prog_fail_prob: 0.001,
                            erase_fail_prob: 0.001,
                        },
                        seed,
                        ..FaultConfig::default()
                    })
                    .build()
                    .expect("perf fault configuration validates");
                let trace = Microbench::read()
                    .hot_clusters(2)
                    .requests(n)
                    .gap_ns(overload_gap_ns(&cfg, 2))
                    .build(&cfg, seed);
                (cfg, trace)
            }),
        },
    ]
}

/// Runs one profile once and measures it. Trace synthesis happens
/// outside the timed region; only `Array::run` is measured.
pub fn run_profile(profile: &PerfProfile, scale: Scale) -> PerfMeasurement {
    let (cfg, trace) = (profile.build)(perf_seed(), scale.requests);
    // Warm the allocator and page cache with an untimed dry run at 1/10
    // scale so first-touch costs do not pollute the first profile.
    let warm = (profile.build)(perf_seed(), (scale.requests / 10).max(1));
    let _ = Array::new(warm.0, ManagementMode::Autonomic).run(&warm.1);

    let before = triplea_alloc_counter::snapshot();
    let start = Instant::now();
    let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let delta = triplea_alloc_counter::snapshot().since(before);

    let events = report.events_processed();
    PerfMeasurement {
        name: profile.name,
        requests: trace.len() as u64,
        completed: report.completed(),
        events,
        wall_ns,
        events_per_sec: if wall_ns == 0 {
            0
        } else {
            ((events as u128) * 1_000_000_000u128 / wall_ns as u128) as u64
        },
        allocations: delta.allocations,
        alloc_bytes: delta.bytes,
    }
}

/// Runs the whole suite serially, in profile order.
pub fn run_suite(scale: Scale) -> Vec<PerfMeasurement> {
    profiles(scale)
        .iter()
        .map(|p| run_profile(p, scale))
        .collect()
}

/// Renders the measurements as the `results/perf.json` value: fixed key
/// order, integers only, one object per profile.
pub fn to_json(scale: Scale, runs: &[PerfMeasurement]) -> Value {
    obj([
        ("experiment", text("perf")),
        ("requests_per_profile", uint(scale.requests as u64)),
        (
            "profiles",
            arr(runs
                .iter()
                .map(|m| {
                    obj([
                        ("name", text(m.name)),
                        ("requests", uint(m.requests)),
                        ("completed", uint(m.completed)),
                        ("events", uint(m.events)),
                        ("wall_ns", uint(m.wall_ns)),
                        ("events_per_sec", uint(m.events_per_sec)),
                        ("allocations", uint(m.allocations)),
                        ("alloc_bytes", uint(m.alloc_bytes)),
                    ])
                })
                .collect()),
        ),
    ])
}

/// Renders the human-readable `results/perf.txt` companion.
pub fn render_text(scale: Scale, runs: &[PerfMeasurement]) -> String {
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.requests.to_string(),
                m.events.to_string(),
                format!("{:.1}", m.wall_ns as f64 / 1e6),
                format!("{:.2}", m.events_per_sec as f64 / 1e6),
                m.allocations.to_string(),
            ]
        })
        .collect();
    let mut out = crate::harness::fmt_table(
        &format!(
            "Simulator throughput, {} requests per profile (single thread)",
            scale.requests
        ),
        &[
            "Profile",
            "Requests",
            "Events",
            "Wall ms",
            "M events/s",
            "Allocations",
        ],
        &rows,
    );
    out.push('\n');
    for p in profiles(scale) {
        out.push_str(&format!("{:<15} {}\n", p.name, p.what));
    }
    out.push_str(
        "\nwall_ns/events_per_sec are machine-dependent; events/completed are\n\
         deterministic and must not change across perf-only PRs.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_serializes_at_tiny_scale() {
        let scale = Scale { requests: 200 };
        let runs = run_suite(scale);
        assert_eq!(runs.len(), 4);
        for m in &runs {
            assert_eq!(m.requests, 200, "{}", m.name);
            assert!(m.completed > 0, "{} completed nothing", m.name);
            assert!(m.events >= m.completed, "{} too few events", m.name);
            assert!(m.events_per_sec > 0, "{} zero throughput", m.name);
        }
        let json = serde_json::to_string_pretty(&to_json(scale, &runs)).unwrap();
        assert!(json.contains("\"read_heavy\""));
        assert!(json.contains("\"gc_pressure\""));
        let txt = render_text(scale, &runs);
        assert!(txt.contains("fault_injected"));
    }

    #[test]
    fn simulated_outcome_is_deterministic() {
        let scale = Scale { requests: 200 };
        let a = run_suite(scale);
        let b = run_suite(scale);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.events, y.events, "{} events drifted", x.name);
            assert_eq!(x.completed, y.completed, "{} completions drifted", x.name);
        }
    }

    #[test]
    fn gc_profile_actually_collects() {
        // The tight free pool needs ~16k overwrites before a FIMM drops
        // below the GC threshold; smaller runs never collect (verified
        // against the pre-overhaul engine, which behaves identically).
        let scale = Scale { requests: 16_000 };
        let p = profiles(scale);
        let gc = p.iter().find(|p| p.name == "gc_pressure").unwrap();
        let (cfg, trace) = (gc.build)(perf_seed(), scale.requests);
        let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
        assert!(
            report.ftl_stats().gc_erases > 0,
            "gc_pressure profile never triggered GC: {:?}",
            report.ftl_stats()
        );
    }
}
