//! `timeline`: one fully traced run per management mode, exported three
//! ways from the same recorder harvest — the structured event/metric
//! artifact (`results/timeline.json`), a Chrome `trace_event` file for
//! chrome://tracing / Perfetto (`results/timeline.trace.json`), and a
//! terminal-friendly timeline excerpt in the `.txt` report.
//!
//! The recorder's ring keeps the last [`RING_EVENTS`] events, so the
//! artifact shows the *steady-state* tail of the run — bus slices, link
//! transmissions, die reservations, and (in autonomic mode) detector
//! samples and migration traffic interleaved on their real timestamps.

use crate::harness::{jf, js, obj, report_json, text, uint, Experiment, Scale};
use crate::{bench_config, f1, overload_gap_ns};
use serde_json::Value;
use triplea_core::{ManagementMode, Metric, Simulation, TraceConfig};
use triplea_workloads::Microbench;

/// Recorder ring capacity: small enough that the embedded Chrome trace
/// stays a readable artifact, large enough to span several request
/// lifecycles across the hot clusters.
const RING_EVENTS: usize = 512;

/// Object pairs of `v`, empty for non-objects (the vendored
/// `serde_json::Value` keeps objects insertion-ordered).
fn pairs(v: &Value) -> &[(String, Value)] {
    match v {
        Value::Object(p) => p,
        _ => &[],
    }
}

fn metric_value(m: &Metric) -> Value {
    match m {
        Metric::Counter(c) => uint(*c),
        Metric::Gauge(g) => Value::F64(*g),
        Metric::Summary {
            count,
            mean_ns,
            p50_ns,
            p99_ns,
            max_ns,
        } => obj([
            ("count", uint(*count)),
            ("mean_ns", Value::F64(*mean_ns)),
            ("p50_ns", uint(*p50_ns)),
            ("p99_ns", uint(*p99_ns)),
            ("max_ns", uint(*max_ns)),
        ]),
        // Full series points already live in the embedded trace JSON;
        // the artifact summary only records how many were kept.
        Metric::Series(pts) => uint(pts.len() as u64),
    }
}

/// Runs one traced replay and packages the harvest. The heavyweight
/// exports (Chrome trace, trace JSON, text excerpt) are only embedded
/// for the autonomic point, which is the one the artifact files render.
fn traced_run(mode: ManagementMode, requests: usize, seed: u64, full_exports: bool) -> Value {
    let cfg = bench_config();
    let trace = Microbench::read()
        .hot_clusters(2)
        .requests(requests)
        .gap_ns(overload_gap_ns(&cfg, 2))
        .build(&cfg, seed);
    let run = Simulation::builder()
        .config(cfg)
        .mode(mode)
        .with_recorder(TraceConfig::all().with_capacity(RING_EVENTS))
        .build()
        .expect("bench baseline is a valid configuration")
        .run_verified(&trace);
    run.integrity
        .expect("FTL integrity violated in traced run");
    let rt = run.trace.expect("recorder attached");

    let counts = Value::Object(
        rt.counts_by_kind()
            .into_iter()
            .map(|(k, n)| (k.to_string(), uint(n)))
            .collect(),
    );
    let metrics = Value::Object(
        rt.metrics
            .sorted()
            .into_iter()
            .map(|(name, m)| (name.to_string(), metric_value(m)))
            .collect(),
    );
    let mut fields = vec![
        ("report".to_string(), report_json(&run.report)),
        ("events_total".to_string(), uint(rt.total)),
        ("events_dropped".to_string(), uint(rt.dropped)),
        ("events_retained".to_string(), uint(rt.events.len() as u64)),
        ("counts".to_string(), counts),
        ("metrics".to_string(), metrics),
    ];
    if full_exports {
        fields.push(("timeline".to_string(), text(&rt.render_text(32))));
        fields.push(("trace_json".to_string(), text(&rt.to_json())));
        fields.push(("chrome".to_string(), text(&rt.chrome_trace())));
    }
    Value::Object(fields)
}

/// Builds the `timeline` experiment: both management modes traced on the
/// 2-hot-cluster overload, Chrome trace emitted as an extra artifact.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "timeline",
        "Traced run: event timeline, per-component metrics, Chrome trace",
    );
    let requests = scale.requests;
    e.point("base", move |ctx| {
        traced_run(ManagementMode::NonAutonomic, requests, ctx.base_seed, false)
    });
    e.point("aaa", move |ctx| {
        traced_run(ManagementMode::Autonomic, requests, ctx.base_seed, true)
    });
    e.artifact("trace.json", |res| js(res.data("aaa"), "chrome"));
    e.renderer(|res| {
        let base = res.data("base");
        let aaa = res.data("aaa");
        let mut out = String::new();

        // Union of event kinds, autonomic order first (it is a
        // superset in practice: migration/detector kinds are
        // autonomic-only).
        let mut kinds: Vec<&str> = pairs(&aaa["counts"]).iter().map(|(k, _)| k.as_str()).collect();
        for (k, _) in pairs(&base["counts"]) {
            if !kinds.contains(&k.as_str()) {
                kinds.push(k);
            }
        }
        let count = |d: &Value, k: &str| match d["counts"].get(k) {
            Some(v) => v.as_u64().unwrap_or(0).to_string(),
            None => "-".to_string(),
        };
        let rows: Vec<Vec<String>> = kinds
            .iter()
            .map(|k| vec![k.to_string(), count(base, k), count(aaa, k)])
            .collect();
        out.push_str(&crate::harness::fmt_table(
            &format!(
                "Event counts over the last {} recorded events (read-heavy, 2 hot clusters)",
                RING_EVENTS
            ),
            &["Kind", "Base", "AAA"],
            &rows,
        ));

        // A cluster is shown only if it served traffic — half the 4×16
        // array idles in this workload and would bury the table.
        let served = |cluster: &str| {
            aaa["metrics"]
                .get(&format!("cluster.{cluster}.served"))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        };
        let mut rows = Vec::new();
        for (name, v) in pairs(&aaa["metrics"]) {
            if let Some(rest) = name.strip_prefix("cluster.") {
                let cluster = rest.split('.').next().unwrap_or("");
                if served(cluster) == 0 {
                    continue;
                }
            }
            let rendered = match v {
                Value::Object(_) => format!(
                    "n={} mean={} us p50={} p99={} max={}",
                    v.get("count").and_then(|c| c.as_u64()).unwrap_or(0),
                    f1(jf(v, "mean_ns") / 1_000.0),
                    f1(jf(v, "p50_ns") / 1_000.0),
                    f1(jf(v, "p99_ns") / 1_000.0),
                    f1(jf(v, "max_ns") / 1_000.0),
                ),
                Value::F64(g) => format!("{g:.3}"),
                other => other.as_u64().unwrap_or(0).to_string(),
            };
            // Series entries only carry their retained length; skip the
            // per-FIMM queue-depth lanes to keep the table readable.
            if !name.ends_with("queue_depth") {
                rows.push(vec![name.clone(), rendered]);
            }
        }
        out.push('\n');
        out.push_str(&crate::harness::fmt_table(
            "Autonomic-run instruments (hierarchical metric registry)",
            &["Metric", "Value"],
            &rows,
        ));

        out.push_str("\n## Timeline excerpt (autonomic run)\n\n```\n");
        out.push_str(&js(aaa, "timeline"));
        out.push_str("```\n");
        out.push_str(
            "\nfull event stream: results/timeline.trace.json — load it in\n\
             chrome://tracing or https://ui.perfetto.dev (one process lane per\n\
             cluster, one thread lane per FIMM; durations are bus/link/flash\n\
             reservations, instants are detector and migration events).\n",
        );
        out
    });
    e
}
