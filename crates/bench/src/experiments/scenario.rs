//! The scenario catalog: named end-to-end runs that exercise the array
//! under *non-stationary* conditions — replayed block traces, diurnal
//! load, flash crowds, drifting hot spots, and failure storms layered
//! on the crash-recovery machinery. `bench scenario <name>` drives the
//! catalog; `tests/golden.rs` pins every artifact byte-for-byte across
//! thread counts.
//!
//! Each scenario is a full [`Experiment`], so it inherits the harness's
//! seed derivation, spec-order collection, and golden-snapshot flow
//! unchanged.

use crate::harness::{
    flag, jf, ju, obj, report_json, text, uint, Experiment, Scale,
};
use crate::{bench_builder, bench_config, f1, f2, profile_gap_ns};
use serde_json::Value;
use triplea_core::{
    Array, ArrayConfig, FaultConfig, FimmFaultEvent, FimmFaultKind, ManagementMode,
    PowerLossEvent, Trace,
};
use triplea_workloads::msr::{parse_msr, to_msr_csv, write_msr};
use triplea_workloads::{ScenarioTrace, TraceMapper, WorkloadProfile};

/// Names of every catalog scenario, in artifact order — the list
/// `bench scenario list` prints and the golden suite iterates.
pub const NAMES: [&str; 6] = [
    "scenario_trace_replay",
    "scenario_diurnal",
    "scenario_flash_crowd",
    "scenario_hotspot_drift",
    "scenario_failure_storm_mix",
    "scenario_sla_under_drift",
];

/// Builds the whole catalog, in [`NAMES`] order.
pub fn catalog(scale: Scale) -> Vec<Experiment> {
    vec![
        trace_replay(scale),
        diurnal(scale),
        flash_crowd(scale),
        hotspot_drift(scale),
        failure_storm_mix(scale),
        sla_under_drift(scale),
    ]
}

fn profile(name: &str) -> WorkloadProfile {
    WorkloadProfile::by_name(name).expect("Table-1 profile registered")
}

/// Shared summary shape: scenario metadata + both management modes.
fn scenario_pair(cfg: ArrayConfig, scenario: &ScenarioTrace, seed: u64) -> Value {
    let trace = scenario.build(&cfg, seed);
    let (base, aaa) = crate::experiments::pair_json(cfg, &trace);
    obj([
        ("shape", text(scenario.name())),
        ("phases", uint(scenario.phases().len() as u64)),
        ("span_ns", uint(scenario.span_ns())),
        ("requests", uint(trace.len() as u64)),
        ("base", base),
        ("aaa", aaa),
    ])
}

/// Standard scenario table: offered shape on the left, both modes'
/// headline numbers on the right.
fn scenario_renderer(title: &'static str) -> impl Fn(&crate::harness::ExperimentResult) -> String {
    move |res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    ju(d, "phases").to_string(),
                    f1(jf(d, "base.iops") / 1e3),
                    f1(jf(d, "aaa.iops") / 1e3),
                    f2(crate::experiments::ratio(jf(d, "aaa.iops"), jf(d, "base.iops"))),
                    f1(jf(d, "base.p99_us")),
                    f1(jf(d, "aaa.p99_us")),
                ]
            })
            .collect();
        crate::harness::fmt_table(
            title,
            &[
                "Scenario",
                "Phases",
                "Base kIOPS",
                "AAA kIOPS",
                "Gain",
                "Base p99 us",
                "AAA p99 us",
            ],
            &rows,
        )
    }
}

/// `scenario_trace_replay`: synthesize a Table-1 stream, serialize it
/// into the MSR-Cambridge CSV schema, run it back through the *real*
/// ingestion path (`parse_msr` → [`TraceMapper`]), and replay the mapped
/// trace through both modes. A lossless `parse → write → parse`
/// round-trip is asserted inline on every point, so the golden suite
/// also pins the parser.
pub fn trace_replay(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "scenario_trace_replay",
        "Scenario: MSR-style trace ingestion and replay",
    );
    for name in ["fin", "mds", "prxy"] {
        e.point(format!("replay/{name}"), move |ctx| {
            let cfg = bench_config();
            let p = profile(name);
            let synth = crate::enterprise_trace_n(&p, &cfg, ctx.base_seed, scale.requests);
            let page = cfg.shape.flash.page_size as u64;

            // Through the wire format and back: the scenario exercises
            // the same code path a real MSR capture would.
            let csv = to_msr_csv(&synth, "triplea", page);
            let records = parse_msr(csv.as_bytes()).expect("serialized trace parses");

            let mut rewritten = Vec::new();
            write_msr(&mut rewritten, &records).expect("in-memory write succeeds");
            let reparsed = parse_msr(rewritten.as_slice()).expect("re-serialized trace parses");
            assert_eq!(records, reparsed, "parse -> write -> parse must be lossless");

            let span_ns = synth
                .requests()
                .last()
                .map(|r| r.at.as_nanos())
                .unwrap_or(0)
                .max(1);
            let mapped: Trace = TraceMapper::new(&cfg)
                .target_span_ns(span_ns)
                .map(&records);
            assert_eq!(mapped.len(), synth.len(), "every record must map");
            let (base, aaa) = crate::experiments::pair_json(cfg, &mapped);
            obj([
                ("profile", text(name)),
                ("records", uint(records.len() as u64)),
                ("roundtrip_lossless", flag(true)),
                ("span_ns", uint(span_ns)),
                ("base", base),
                ("aaa", aaa),
            ])
        });
    }
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    crate::harness::js(d, "profile"),
                    ju(d, "records").to_string(),
                    f1(jf(d, "base.iops") / 1e3),
                    f1(jf(d, "aaa.iops") / 1e3),
                    f2(crate::experiments::ratio(jf(d, "aaa.iops"), jf(d, "base.iops"))),
                    f1(jf(d, "aaa.p99_us")),
                ]
            })
            .collect();
        let mut out = crate::harness::fmt_table(
            "Trace replay: Table-1 stream -> MSR CSV -> parser -> mapper -> array",
            &["Profile", "Records", "Base kIOPS", "AAA kIOPS", "Gain", "AAA p99 us"],
            &rows,
        );
        out.push_str(
            "\nevery point also asserts a lossless parse -> serialize -> parse\n\
             round-trip of the MSR schema before replaying.\n",
        );
        out
    });
    e
}

/// `scenario_diurnal`: the offered load breathes through day curves —
/// the arrival gap interpolates trough → peak → trough while the mix
/// stays fixed, one point per cycle count.
pub fn diurnal(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "scenario_diurnal",
        "Scenario: diurnal load (arrival gap follows a day curve)",
    );
    for cycles in [1u32, 2] {
        e.point(format!("cycles/{cycles}"), move |ctx| {
            let cfg = bench_config();
            let peak = profile_gap_ns(&profile("fin"), &cfg);
            let s = ScenarioTrace::diurnal(profile("fin"), scale.requests, peak * 6, peak, cycles)
                .hot_region_pages(crate::HOT_REGION_PAGES);
            scenario_pair(cfg, &s, ctx.base_seed)
        });
    }
    e.renderer(scenario_renderer(
        "Diurnal load: trough -> peak -> trough arrival gaps (fin mix)",
    ));
    e
}

/// `scenario_flash_crowd`: calm stretches punctured by short bursts that
/// slam ~97 % of I/O onto one (rotating) cluster.
pub fn flash_crowd(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "scenario_flash_crowd",
        "Scenario: flash crowds slamming one rotating cluster",
    );
    for crowds in [2u32, 4] {
        e.point(format!("crowds/{crowds}"), move |ctx| {
            let cfg = bench_config();
            let gap = profile_gap_ns(&profile("prxy"), &cfg);
            let s = ScenarioTrace::flash_crowd(
                profile("prxy"),
                scale.requests,
                gap * 4,
                gap / 2,
                crowds,
            )
            .hot_region_pages(crate::HOT_REGION_PAGES);
            scenario_pair(cfg, &s, ctx.base_seed)
        });
    }
    e.renderer(scenario_renderer(
        "Flash crowds: calm prxy traffic with 97%-concentrated bursts",
    ));
    e
}

/// `scenario_hotspot_drift`: the hot cluster set rotates to a disjoint
/// set each phase, so placement decisions go stale mid-run.
pub fn hotspot_drift(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "scenario_hotspot_drift",
        "Scenario: hot-spot drift (hot clusters move mid-run)",
    );
    for phases in [2u32, 4, 8] {
        e.point(format!("phases/{phases}"), move |ctx| {
            let cfg = bench_config();
            let gap = profile_gap_ns(&profile("usr"), &cfg);
            let s = ScenarioTrace::hotspot_drift(profile("usr"), scale.requests, gap, phases)
                .hot_region_pages(crate::HOT_REGION_PAGES);
            scenario_pair(cfg, &s, ctx.base_seed)
        });
    }
    e.renderer(scenario_renderer(
        "Hot-spot drift: usr mix, hot set rotates to disjoint clusters each phase",
    ));
    e
}

/// Schedules a module death and a slowdown at the given phase starts
/// through the non-panicking [`FaultConfig::try_with_fimm_event`] hook —
/// the path scenario drivers use because a generated storm can exceed
/// the bounded schedule.
fn storm_faults(starts: &[u64], cut_ns: u64) -> FaultConfig {
    let mut fc = FaultConfig::default().with_power_loss(PowerLossEvent::at(cut_ns));
    let events = [
        FimmFaultEvent {
            cluster: 0,
            fimm: 0,
            at_ns: starts.get(1).copied().unwrap_or(1).max(1),
            kind: FimmFaultKind::Dead,
        },
        FimmFaultEvent {
            cluster: 1,
            fimm: 1,
            at_ns: starts.get(2).copied().unwrap_or(2).max(1),
            kind: FimmFaultKind::Slowdown(4),
        },
    ];
    for ev in events {
        fc = fc
            .try_with_fimm_event(ev)
            .expect("two events fit the fault schedule");
    }
    fc
}

/// `scenario_failure_storm_mix`: power cuts and module faults aimed at
/// specific phases of the drift and flash-crowd shapes. Every point
/// remounts from journaled FTL metadata and must pass the end-to-end
/// integrity audit; the artifact records the recovery accounting.
pub fn failure_storm_mix(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "scenario_failure_storm_mix",
        "Scenario: failure storms layered on non-stationary traffic",
    );
    e.point("cut/drift_mid", move |ctx| {
        let cfg0 = bench_config();
        let gap = profile_gap_ns(&profile("mds"), &cfg0);
        let s = ScenarioTrace::hotspot_drift(profile("mds"), scale.requests, gap, 4)
            .hot_region_pages(crate::HOT_REGION_PAGES);
        // Cut in the middle of the third drift phase: the hot set has
        // already moved twice when the journal replays.
        let starts = s.phase_starts_ns();
        let cut_ns = starts[2] + (starts[3] - starts[2]) / 2;
        let cfg = bench_builder()
            .faults(FaultConfig::default().with_power_loss(PowerLossEvent::at(cut_ns)))
            .build()
            .expect("drift power-cut configuration validates");
        storm_point(cfg, &s, ctx.base_seed, cut_ns, false)
    });
    e.point("cut/crowd_mid", move |ctx| {
        let cfg0 = bench_config();
        let gap = profile_gap_ns(&profile("prxy"), &cfg0);
        let s = ScenarioTrace::flash_crowd(profile("prxy"), scale.requests, gap * 4, gap / 2, 2)
            .hot_region_pages(crate::HOT_REGION_PAGES);
        // Cut inside the first crowd burst, the worst instant: writes
        // are concentrated on one cluster when DRAM vanishes.
        let starts = s.phase_starts_ns();
        let cut_ns = starts[1] + (starts[2] - starts[1]) / 2;
        let cfg = bench_builder()
            .faults(FaultConfig::default().with_power_loss(PowerLossEvent::at(cut_ns)))
            .build()
            .expect("crowd power-cut configuration validates");
        storm_point(cfg, &s, ctx.base_seed, cut_ns, false)
    });
    e.point("storm/drift_mix", move |ctx| {
        let cfg0 = bench_config();
        let gap = profile_gap_ns(&profile("mds"), &cfg0);
        let s = ScenarioTrace::hotspot_drift(profile("mds"), scale.requests, gap, 4)
            .hot_region_pages(crate::HOT_REGION_PAGES);
        let starts = s.phase_starts_ns();
        let cut_ns = starts[3] + (s.span_ns() - starts[3]) / 2;
        let cfg = bench_builder()
            .hot_spares(1)
            .faults(storm_faults(&starts, cut_ns))
            .build()
            .expect("storm configuration validates");
        storm_point(cfg, &s, ctx.base_seed, cut_ns, true)
    });
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    crate::harness::js(d, "shape"),
                    ju(d, "aaa.completed").to_string(),
                    ju(d, "aaa.recovery.lost_inflight_requests").to_string(),
                    ju(d, "aaa.recovery.journal_replayed").to_string(),
                    ju(d, "aaa.recovery.rebuilds_completed").to_string(),
                    f1(ju(d, "aaa.recovery.remount_ns") as f64 / 1_000.0),
                    f1(jf(d, "aaa.p99_us")),
                ]
            })
            .collect();
        let mut out = crate::harness::fmt_table(
            "Failure storms on moving targets: cut + module faults mid-scenario",
            &[
                "Point",
                "Shape",
                "Completed",
                "Lost",
                "Replayed",
                "Rebuilds",
                "Remount us",
                "p99 us",
            ],
            &rows,
        );
        out.push_str(
            "\nevery point remounts from the journal mid-scenario and passes the\n\
             end-to-end FTL integrity audit.\n",
        );
        out
    });
    e
}

/// Runs one faulted scenario through the autonomic array with the full
/// recovery assertions, and embeds scenario + recovery accounting.
fn storm_point(
    cfg: ArrayConfig,
    scenario: &ScenarioTrace,
    seed: u64,
    cut_ns: u64,
    expect_rebuild: bool,
) -> Value {
    let trace = scenario.build(&cfg, seed);
    let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
    run.integrity
        .expect("FTL integrity violated after mid-scenario recovery");
    let rec = run.report.recovery_stats();
    assert_eq!(rec.power_losses, 1, "the scheduled cut must fire");
    assert_eq!(
        run.report.completed() + rec.lost_inflight_requests,
        trace.len() as u64,
        "every request must complete or be accounted lost"
    );
    if expect_rebuild {
        assert_eq!(rec.rebuilds_completed, 1, "the dead module must rebuild");
    }
    obj([
        ("shape", text(scenario.name())),
        ("phases", uint(scenario.phases().len() as u64)),
        ("span_ns", uint(scenario.span_ns())),
        ("cut_ns", uint(cut_ns)),
        ("aaa", report_json(&run.report)),
    ])
}

/// `scenario_sla_under_drift`: the multi-tenant front door under
/// everything at once — an interactive/batch tenant blend (the `sla`
/// sweep's tables), the interactive class riding a drifting hot set,
/// the batch class breathing through a day curve, and a failure storm
/// (power cut + module death + slowdown) timed to land mid-drift, when
/// the interactive lanes' placement is already stale. Both management
/// modes run the same blended trace; the autonomic run must survive the
/// storm with full recovery accounting and the artifact compares
/// per-class SLA violations.
pub fn sla_under_drift(scale: Scale) -> Experiment {
    use crate::experiments::sla;

    let mut e = Experiment::new(
        "scenario_sla_under_drift",
        "Scenario: tenant SLAs under hot-set drift and a failure storm",
    );
    for n in [10usize, 100] {
        e.point(format!("tenants/{n}"), move |ctx| {
            let cfg0 = bench_config();
            let k = sla::interactive_count(n);
            let interactive_reqs = scale.requests * 2 / 5;
            let batch_reqs = scale.requests - interactive_reqs;

            // Interactive lanes chase a hot set that rotates to a
            // disjoint cluster group every phase; batch lanes breathe
            // through one diurnal cycle underneath them.
            let gap = profile_gap_ns(&profile("fin"), &cfg0);
            let drift = ScenarioTrace::hotspot_drift(profile("fin"), interactive_reqs, gap, 4)
                .hot_region_pages(crate::HOT_REGION_PAGES);
            let peak = profile_gap_ns(&profile("mds"), &cfg0);
            let day = ScenarioTrace::diurnal(profile("mds"), batch_reqs, peak * 6, peak, 1)
                .hot_region_pages(crate::HOT_REGION_PAGES);

            // The storm is aimed at the interactive class: the cut lands
            // mid third drift phase, after the hot set has moved twice,
            // with a module death and a slowdown at earlier phase seams.
            let starts = drift.phase_starts_ns();
            let cut_ns = starts[2] + (starts[3] - starts[2]) / 2;
            let cfg = bench_builder()
                .with_tenants(sla::tenant_table(n))
                .hot_spares(1)
                .faults(storm_faults(&starts, cut_ns))
                .build()
                .expect("sla-under-drift configuration validates");

            let mut all = sla::split_across(drift.build(&cfg, ctx.base_seed), 0, k);
            all.extend(sla::split_across(
                day.build(&cfg, ctx.base_seed ^ 0xD1A),
                k,
                n - k,
            ));
            let trace = Trace::new(all);

            let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(&trace);
            let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
            run.integrity
                .expect("FTL integrity violated after the mid-drift storm");
            let rec = run.report.recovery_stats();
            assert_eq!(rec.power_losses, 1, "the scheduled cut must fire");
            assert_eq!(rec.rebuilds_completed, 1, "the dead module must rebuild");
            assert_eq!(
                run.report.completed() + rec.lost_inflight_requests,
                trace.len() as u64,
                "every request must complete or be accounted lost"
            );
            obj([
                ("tenants", uint(n as u64)),
                ("interactive", uint(k as u64)),
                ("batch", uint((n - k) as u64)),
                ("requests", uint(trace.len() as u64)),
                ("cut_ns", uint(cut_ns)),
                ("base", sla::mode_json(&base, k, false)),
                ("aaa", sla::mode_json(&run.report, k, true)),
                (
                    "recovery",
                    obj([
                        ("power_losses", uint(rec.power_losses)),
                        ("lost_inflight_requests", uint(rec.lost_inflight_requests)),
                        ("journal_replayed", uint(rec.journal_replayed)),
                        ("rebuilds_completed", uint(rec.rebuilds_completed)),
                        ("remount_ns", uint(rec.remount_ns)),
                    ]),
                ),
            ])
        });
    }
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    ju(d, "base.sla_violations").to_string(),
                    ju(d, "aaa.sla_violations").to_string(),
                    ju(d, "aaa.interactive_violations").to_string(),
                    ju(d, "aaa.batch_violations").to_string(),
                    ju(d, "aaa.violating_tenants").to_string(),
                    ju(d, "recovery.rebuilds_completed").to_string(),
                    f1(ju(d, "aaa.worst_interactive_p99_ns") as f64 / 1e3),
                ]
            })
            .collect();
        let mut out = crate::harness::fmt_table(
            "Tenant SLAs under drift + failure storm: base vs Triple-A",
            &[
                "Point",
                "Base viol",
                "AAA viol",
                "Int viol",
                "Batch viol",
                "Viol tenants",
                "Rebuilds",
                "Worst int p99 us",
            ],
            &rows,
        );
        out.push_str(
            "\nthe cut lands mid drift phase with a module dead and a lane\n\
             slowed; the autonomic run must remount, rebuild onto the spare,\n\
             and keep the interactive class inside its p99 budget.\n",
        );
        out
    });
    e
}
