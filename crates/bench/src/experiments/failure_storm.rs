//! Failure-storm scenarios: whole-array power cuts, hot-spare rebuilds
//! of dead modules, and a combined storm (NAND faults + module death +
//! slowdown + power loss) — the crash-recovery counterpart of the
//! `faults` sweep. Every run remounts from the journaled FTL metadata,
//! passes the end-to-end integrity audit, and reproduces byte for byte
//! at any thread count.

use crate::harness::{jf, ju, obj, report_json, text, uint, Experiment, Scale};
use crate::{bench_builder, f1, overload_gap_ns};
use serde_json::Value;
use triplea_core::{
    Array, ArrayConfig, FaultConfig, FimmFaultEvent, FimmFaultKind, FlashFaultProfile,
    ManagementMode, PowerLossEvent, Trace,
};
use triplea_workloads::{ProfileTrace, WorkloadProfile};

/// Write-heavy enterprise mix (mds: ~26 % reads) — a power cut must
/// land mid-write for the journal replay to have work to do.
fn storm_trace(cfg: &ArrayConfig, seed: u64, requests: usize, gap_ns: u64) -> Trace {
    ProfileTrace::new(WorkloadProfile::by_name("mds").expect("mds profile registered"))
        .requests(requests)
        .gap_ns(gap_ns)
        .build(cfg, seed)
}

/// Runs one mode, hard-fails on a metadata integrity violation, and
/// embeds the summary (the `recovery` key appears exactly when power
/// losses or rebuilds happened).
fn run_checked(cfg: ArrayConfig, mode: ManagementMode, trace: &Trace) -> Value {
    let run = Array::new(cfg, mode).run_verified(trace);
    run.integrity
        .expect("FTL integrity violated after recovery");
    report_json(&run.report)
}

/// Builds the failure-storm experiment: power-cut instants, hot-spare
/// rebuild under idle vs busy foreground load, and the combined storm.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "failure_storm",
        "Failure storms: power-loss recovery, hot-spare rebuild, combined",
    );
    let gap = overload_gap_ns(&crate::bench_config(), 2);
    let span_ns = gap * scale.requests as u64;
    for (label, frac_num) in [("quarter", 1u64), ("half", 2), ("three_quarter", 3)] {
        e.point(format!("power_loss/{label}"), move |ctx| {
            let cut_ns = span_ns * frac_num / 4;
            let cfg = bench_builder()
                .faults(FaultConfig::default().with_power_loss(PowerLossEvent::at(cut_ns)))
                .build()
                .expect("power-loss configuration validates");
            let trace = storm_trace(&cfg, ctx.base_seed, scale.requests, gap);
            let aaa = {
                let run = Array::new(cfg.clone(), ManagementMode::Autonomic).run_verified(&trace);
                run.integrity
                    .expect("FTL integrity violated after power-loss remount");
                let rec = run.report.recovery_stats();
                assert_eq!(rec.power_losses, 1, "the scheduled cut must fire");
                assert_eq!(
                    run.report.completed() + rec.lost_inflight_requests,
                    trace.len() as u64,
                    "every request must complete or be accounted lost"
                );
                report_json(&run.report)
            };
            obj([
                ("instant", text(label)),
                ("cut_ns", uint(cut_ns)),
                ("aaa", aaa),
                (
                    "base",
                    run_checked(cfg, ManagementMode::NonAutonomic, &trace),
                ),
            ])
        });
    }
    for (label, gap_mult) in [("idle", 4u64), ("busy", 1)] {
        e.point(format!("rebuild/{label}"), move |ctx| {
            let cfg = bench_builder()
                .hot_spares(1)
                .faults(FaultConfig::default().with_fimm_event(FimmFaultEvent {
                    cluster: 0,
                    fimm: 0,
                    at_ns: span_ns / 2,
                    kind: FimmFaultKind::Dead,
                }))
                .build()
                .expect("rebuild configuration validates");
            let trace = storm_trace(&cfg, ctx.base_seed, scale.requests, gap * gap_mult);
            let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
            run.integrity
                .expect("FTL integrity violated after hot-spare rebuild");
            let rec = run.report.recovery_stats();
            assert_eq!(rec.rebuilds_completed, 1, "the rebuild must finish");
            obj([
                ("load", text(label)),
                ("aaa", report_json(&run.report)),
            ])
        });
    }
    e.point("storm/combined", move |ctx| {
        let cfg = bench_builder()
            .hot_spares(1)
            .faults(FaultConfig {
                flash: FlashFaultProfile {
                    read_transient_prob: 0.005,
                    prog_fail_prob: 0.0002,
                    erase_fail_prob: 0.0002,
                },
                seed: ctx.base_seed,
                ..FaultConfig::default()
            })
            .tune(|c| {
                c.faults = c
                    .faults
                    .with_fimm_event(FimmFaultEvent {
                        cluster: 0,
                        fimm: 0,
                        at_ns: span_ns / 4,
                        kind: FimmFaultKind::Dead,
                    })
                    .with_fimm_event(FimmFaultEvent {
                        cluster: 1,
                        fimm: 1,
                        at_ns: span_ns / 4,
                        kind: FimmFaultKind::Slowdown(4),
                    })
                    .with_power_loss(PowerLossEvent::at(span_ns / 2));
            })
            .build()
            .expect("storm configuration validates");
        let trace = storm_trace(&cfg, ctx.base_seed, scale.requests, gap);
        let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
        run.integrity
            .expect("FTL integrity violated after the combined storm");
        let rec = run.report.recovery_stats();
        assert_eq!(rec.power_losses, 1);
        obj([("aaa", report_json(&run.report))])
    });
    e.renderer(|res| {
        let mut out = String::new();
        let mut rows = Vec::new();
        for (_, d) in res.section("power_loss/") {
            rows.push(vec![
                crate::harness::js(d, "instant"),
                (ju(d, "aaa.completed")).to_string(),
                ju(d, "aaa.recovery.lost_inflight_requests").to_string(),
                ju(d, "aaa.recovery.requeued_requests").to_string(),
                ju(d, "aaa.recovery.journal_replayed").to_string(),
                ju(d, "aaa.recovery.journal_dropped").to_string(),
                f1(ju(d, "aaa.recovery.remount_ns") as f64 / 1_000.0),
                f1(jf(d, "aaa.p99_us")),
            ]);
        }
        out.push_str(&crate::harness::fmt_table(
            "Power cut mid-write-burst: journal replay + remount (write-heavy mds mix)",
            &[
                "Cut at",
                "Completed",
                "Lost",
                "Requeued",
                "Replayed",
                "Dropped",
                "Remount us",
                "p99 us",
            ],
            &rows,
        ));
        let mut rows = Vec::new();
        for (_, d) in res.section("rebuild/") {
            rows.push(vec![
                crate::harness::js(d, "load"),
                ju(d, "aaa.recovery.rebuild_pages").to_string(),
                f1(ju(d, "aaa.recovery.rebuild_ns") as f64 / 1_000_000.0),
                f1(ju(d, "aaa.recovery.degraded_p99_ns") as f64 / 1_000.0),
                ju(d, "aaa.faults.degraded_reads").to_string(),
                ju(d, "aaa.faults.fimm_deaths").to_string(),
            ]);
        }
        out.push('\n');
        out.push_str(&crate::harness::fmt_table(
            "Hot-spare rebuild of a dead module at t=midpoint (throttled by foreground load)",
            &[
                "Load",
                "Pages copied",
                "Rebuild ms",
                "Degraded p99 us",
                "Degraded reads",
                "Deaths",
            ],
            &rows,
        ));
        let mut rows = Vec::new();
        for (_, d) in res.section("storm/") {
            rows.push(vec![
                ju(d, "aaa.completed").to_string(),
                ju(d, "aaa.recovery.power_losses").to_string(),
                ju(d, "aaa.recovery.rebuilds_completed").to_string(),
                ju(d, "aaa.recovery.journal_replayed").to_string(),
                ju(d, "aaa.recovery.aborted_clones").to_string(),
                ju(d, "aaa.faults.blocks_retired_by_fault").to_string(),
                f1(jf(d, "aaa.p99_us")),
            ]);
        }
        out.push('\n');
        out.push_str(&crate::harness::fmt_table(
            "Combined storm: NAND faults + module death + slowdown + power cut",
            &[
                "Completed",
                "Power losses",
                "Rebuilds",
                "Replayed",
                "Clones aborted",
                "Bad blocks",
                "p99 us",
            ],
            &rows,
        ));
        out.push_str(
            "\nall runs journal FTL metadata, remount after the cut, and pass the\n\
             end-to-end integrity audit; artifacts are byte-identical at any\n\
             thread count.\n",
        );
        out
    });
    e
}
