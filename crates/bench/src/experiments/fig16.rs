//! Figure 16: latency time-series under (a) the non-autonomic array,
//! (b) Triple-A with *naive* data migration, and (c) Triple-A with
//! shadow cloning.

use crate::experiments::{curve_rows, kiops};
use crate::harness::{arr, jf, ju, num, obj, report_json, text, Experiment, Scale};
use crate::{bench_builder, f1, overload_gap_ns};
use serde_json::Value;
use triplea_core::{Array, ManagementMode};
use triplea_workloads::Microbench;

fn run(mode: ManagementMode, naive: bool, seed: u64, requests: usize) -> Value {
    let cfg = bench_builder()
        .collect_series(true)
        .tune(|c| c.autonomic.naive_migration = naive)
        .build()
        .expect("fig16 configuration validates");
    let gap = overload_gap_ns(&cfg, 4);
    let trace = Microbench::read()
        .hot_clusters(4)
        .requests(requests)
        .gap_ns(gap)
        .build(&cfg, seed);
    let report = Array::new(cfg, mode).run(&trace);
    let series = arr(report
        .series()
        .thin(150)
        .into_iter()
        .map(|(t, lat_us)| arr(vec![num(t.as_ms_f64()), num(lat_us)]))
        .collect());
    obj([
        ("report", report_json(&report)),
        ("series", series),
    ])
}

/// Builds the Figure 16 experiment: one point per migration strategy.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new("fig16", "Figure 16: migration-overhead ablation");
    let variants: [(&str, ManagementMode, bool); 3] = [
        ("baseline", ManagementMode::NonAutonomic, false),
        ("naive-migration", ManagementMode::Autonomic, true),
        ("shadow-cloning", ManagementMode::Autonomic, false),
    ];
    for (label, mode, naive) in variants {
        e.point(label, move |ctx| {
            let mut v = run(mode, naive, ctx.base_seed, scale.requests);
            if let Value::Object(pairs) = &mut v {
                pairs.insert(0, ("variant".to_string(), text(label)));
            }
            v
        });
    }
    e.renderer(|res| {
        let mut rows = Vec::new();
        let mut curves = Vec::new();
        for (i, p) in res.points.iter().enumerate() {
            let r = &p.data["report"];
            rows.push(vec![
                p.label.clone(),
                f1(jf(r, "mean_latency_us")),
                f1(jf(r, "p99_us")),
                kiops(jf(r, "iops")),
                ju(r, "autonomic.migrations_started").to_string(),
            ]);
            for pt in curve_rows(&p.data["series"]) {
                curves.push(vec![i as f64, pt[0], pt[1]]);
            }
        }
        let mut out = crate::harness::fmt_table(
            &res.title,
            &["Series", "Mean (us)", "p99 (us)", "IOPS", "Migrations"],
            &rows,
        );
        out.push_str(&crate::harness::fmt_csv_series(
            "fig16 series (series: 0=baseline, 1=naive, 2=shadow)",
            &["series", "submit_ms", "latency_us"],
            &curves,
        ));
        out
    });
    e
}
