//! `sla`: the multi-tenant front door under scale — 10, 100, and 1000
//! tenants sharing one array through per-tenant queues and
//! weighted-fair arbitration.
//!
//! Each sweep point blends two tenant classes into one run:
//!
//! * **interactive** tenants (20 % of the table, weight 8, 200 µs p99
//!   target, shallow queues) submit a flash-crowd shape — calm traffic
//!   punctured by violent single-cluster bursts;
//! * **batch** tenants (the rest, weight 1, 5 ms p99 target, deep
//!   queues) submit a diurnal shape whose offered load breathes over
//!   the day.
//!
//! Both classes' streams are split round-robin across their tenants and
//! merged into one arrival-ordered trace, so every point is a
//! deterministic function of `(config, seed)` and the golden suite can
//! pin the artifacts byte-for-byte at any thread count. The summary
//! compares SLA-violation counts between the non-autonomic baseline and
//! Triple-A; a `results/sla.heatmap.csv` artifact flattens per-tenant
//! violation rates for heatmap plotting.

use crate::harness::{arr, jf, ju, num, obj, uint, Experiment, Scale};
use crate::{bench_builder, f1};
use serde_json::Value;
use triplea_core::{
    Array, ManagementMode, RunReport, TenantId, TenantSpec, TenantStats, Trace,
};
use triplea_workloads::{ScenarioTrace, WorkloadProfile};

/// Tenant counts the sweep visits.
pub const TENANT_POINTS: [usize; 3] = [10, 100, 1_000];

fn profile(name: &str) -> WorkloadProfile {
    WorkloadProfile::by_name(name).expect("Table-1 profile registered")
}

/// Interactive tenants in an `n`-tenant table (20 %, at least one).
pub(crate) fn interactive_count(n: usize) -> usize {
    (n / 5).max(1)
}

/// The tenant table for an `n`-tenant point: interactive lanes first,
/// batch lanes after.
pub(crate) fn tenant_table(n: usize) -> Vec<TenantSpec> {
    let k = interactive_count(n);
    (0..n)
        .map(|i| {
            if i < k {
                TenantSpec::interactive()
            } else {
                TenantSpec::batch()
            }
        })
        .collect()
}

/// Splits `trace` round-robin across tenants `[first, first + count)`.
pub(crate) fn split_across(
    trace: Trace,
    first: usize,
    count: usize,
) -> Vec<triplea_core::TraceRequest> {
    trace
        .into_requests()
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.owned_by(TenantId((first + i % count) as u32)))
        .collect()
}

/// One point's blended workload: a flash-crowd interactive stream and a
/// diurnal batch stream, split across their classes and merged.
fn blended_trace(cfg: &triplea_core::ArrayConfig, n: usize, requests: usize, seed: u64) -> Trace {
    let k = interactive_count(n);
    let interactive_reqs = requests * 2 / 5;
    let batch_reqs = requests - interactive_reqs;
    // Interactive: calm fin traffic with three single-cluster crowds.
    let interactive = ScenarioTrace::flash_crowd(profile("fin"), interactive_reqs, 1_600, 400, 3)
        .build(cfg, seed);
    // Batch: write-heavy mds load breathing over one day curve.
    let batch =
        ScenarioTrace::diurnal(profile("mds"), batch_reqs, 3_200, 800, 1).build(cfg, seed ^ 0xD1A);
    let mut all = split_across(interactive, 0, k);
    all.extend(split_across(batch, k, n - k));
    Trace::new(all)
}

/// Class-level rollup of one run's per-tenant stats.
fn class_summary(stats: &[TenantStats], k: usize) -> (u64, u64, u64, u64) {
    let violating = stats.iter().filter(|t| t.sla_violated()).count() as u64;
    let interactive: u64 = stats[..k].iter().map(|t| t.violations).sum();
    let batch: u64 = stats[k..].iter().map(|t| t.violations).sum();
    let worst_interactive_p99 = stats[..k].iter().map(|t| t.p99_ns).max().unwrap_or(0);
    (violating, interactive, batch, worst_interactive_p99)
}

/// Mode summary: headline numbers plus the per-tenant heatmap rows
/// (`[tenant, completed, violations, p99_ns]`, in tenant order).
pub(crate) fn mode_json(report: &RunReport, k: usize, with_heatmap: bool) -> Value {
    let stats = report.tenant_stats();
    let (violating, vi, vb, worst) = class_summary(stats, k);
    let mut v = obj([
        ("completed", uint(report.completed())),
        ("iops", num(report.iops())),
        ("p99_us", num(report.latency_percentile_us(0.99))),
        ("sla_violations", uint(report.sla_violations())),
        ("violating_tenants", uint(violating)),
        ("interactive_violations", uint(vi)),
        ("batch_violations", uint(vb)),
        ("worst_interactive_p99_ns", uint(worst)),
    ]);
    if with_heatmap {
        if let Value::Object(fields) = &mut v {
            fields.push((
                "heatmap".to_string(),
                arr(stats
                    .iter()
                    .map(|t| {
                        arr(vec![
                            uint(t.tenant as u64),
                            uint(t.completed),
                            uint(t.violations),
                            uint(t.p99_ns),
                        ])
                    })
                    .collect()),
            ));
        }
    }
    v
}

/// Builds the `sla` experiment at `scale`.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "sla",
        "Multi-tenant front door: SLA violations at 10/100/1000 tenants",
    );
    for n in TENANT_POINTS {
        e.point(format!("tenants/{n}"), move |ctx| {
            let cfg = bench_builder()
                .with_tenants(tenant_table(n))
                .build()
                .expect("tenanted bench configuration validates");
            let trace = blended_trace(&cfg, n, scale.requests, ctx.seed);
            let k = interactive_count(n);
            let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(&trace);
            let aaa = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
            obj([
                ("tenants", uint(n as u64)),
                ("interactive", uint(k as u64)),
                ("batch", uint((n - k) as u64)),
                ("requests", uint(trace.len() as u64)),
                ("base", mode_json(&base, k, false)),
                ("aaa", mode_json(&aaa, k, true)),
            ])
        });
    }
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    ju(d, "requests").to_string(),
                    f1(jf(d, "base.iops") / 1e3),
                    f1(jf(d, "aaa.iops") / 1e3),
                    ju(d, "base.sla_violations").to_string(),
                    ju(d, "aaa.sla_violations").to_string(),
                    ju(d, "aaa.violating_tenants").to_string(),
                    f1(jf(d, "aaa.worst_interactive_p99_ns") / 1e3),
                ]
            })
            .collect();
        crate::harness::fmt_table(
            "Multi-tenant SLA sweep",
            &[
                "Point",
                "Requests",
                "Base kIOPS",
                "AAA kIOPS",
                "Base viol",
                "AAA viol",
                "Viol tenants",
                "Worst int p99 us",
            ],
            &rows,
        )
    });
    // Per-tenant violation heatmap: one CSV row per (point, tenant),
    // a pure function of the collected results (so byte-deterministic).
    e.artifact("heatmap.csv", |res| {
        let mut out = String::from("# sla violation heatmap (autonomic mode)\n");
        out.push_str("tenants,tenant,completed,violations,violation_pct,p99_us\n");
        for p in &res.points {
            let n = ju(&p.data, "tenants");
            for row in p.data["aaa"]["heatmap"].as_array().unwrap_or(&[]) {
                let cell = |i: usize| row.as_array().unwrap()[i].as_f64().unwrap_or(0.0);
                let completed = cell(1);
                let pct = if completed > 0.0 {
                    cell(2) * 100.0 / completed
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "{n},{},{},{},{:.2},{:.1}\n",
                    cell(0) as u64,
                    completed as u64,
                    cell(2) as u64,
                    pct,
                    cell(3) / 1e3,
                ));
            }
        }
        out
    });
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_table_shape_and_classes() {
        for n in TENANT_POINTS {
            let specs = tenant_table(n);
            assert_eq!(specs.len(), n);
            let k = interactive_count(n);
            assert!(specs[..k].iter().all(|s| s.weight == 8));
            assert!(specs[k..].iter().all(|s| s.weight == 1));
        }
    }

    #[test]
    fn blended_trace_covers_every_tenant() {
        let n = 10;
        let cfg = bench_builder()
            .with_tenants(tenant_table(n))
            .build()
            .unwrap();
        let t = blended_trace(&cfg, n, 2_000, 7);
        assert_eq!(t.len(), 2_000);
        let mut seen = vec![false; n];
        for r in t.requests() {
            seen[r.tenant.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "every tenant got traffic");
        assert!(t.requests().windows(2).all(|w| w[0].at <= w[1].at));
    }
}
