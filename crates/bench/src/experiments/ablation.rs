//! Ablation studies of Triple-A's design choices (beyond the paper's
//! own figures; DESIGN.md documents the knobs).

use crate::harness::{jf, ju, obj, report_json, text, Experiment, Scale};
use crate::{bench_config_with, f1, f2, overload_gap_ns};
use crate::experiments::kiops;
use serde_json::Value;
use triplea_core::{Array, ArrayConfig, LaggardStrategy, ManagementMode};
use triplea_workloads::Microbench;

fn run(cfg: ArrayConfig, seed: u64, requests: usize) -> Value {
    let gap = overload_gap_ns(&cfg, 4);
    let trace = Microbench::read()
        .hot_clusters(4)
        .requests(requests)
        .gap_ns(gap)
        .build(&cfg, seed);
    report_json(&Array::new(cfg, ManagementMode::Autonomic).run(&trace))
}

type Variant = (String, Box<dyn Fn(&mut ArrayConfig) + Send + Sync>);

fn variants() -> Vec<Variant> {
    let mut v: Vec<Variant> = Vec::new();
    for extent in [1u32, 4, 8, 16] {
        v.push((
            format!("extent={extent}"),
            Box::new(move |c| c.autonomic.migration_extent_pages = extent),
        ));
    }
    for (name, strat) in [
        ("laggard=latency", LaggardStrategy::LatencyMonitoring),
        ("laggard=queue", LaggardStrategy::QueueExamination),
        ("laggard=both", LaggardStrategy::Both),
    ] {
        v.push((name.to_string(), Box::new(move |c| c.autonomic.laggard = strat)));
    }
    for thresh in [0.5f64, 0.7, 0.9] {
        v.push((
            format!("hot_bus={thresh}"),
            Box::new(move |c| c.autonomic.hot_bus_threshold = thresh),
        ));
    }
    for pages in [0usize, 256, 4_096] {
        let label = if pages == 0 {
            "map=full-DRAM".to_string()
        } else {
            format!("map=dftl-{pages}")
        };
        v.push((label, Box::new(move |c| c.mapping_cache_pages = pages)));
    }
    for wear_aware in [true, false] {
        v.push((
            format!("wear_aware={wear_aware}"),
            Box::new(move |c| c.autonomic.wear_aware = wear_aware),
        ));
    }
    // The paper's RC-queue range (650-1000 entries) bounds outstanding
    // I/O array-wide.
    for rc in [650usize, 800, 1_000] {
        v.push((format!("rc_queue={rc}"), Box::new(move |c| c.pcie.rc_queue = rc)));
    }
    v
}

/// Builds the ablation experiment: one point per design-knob variant.
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "ablation",
        "Ablation: Triple-A design knobs (read micro-benchmark, 4 hot clusters)",
    );
    for (label, tweak) in variants() {
        let shown = label.clone();
        e.point(label, move |ctx| {
            let cfg = bench_config_with(|c| tweak(c));
            obj([
                ("variant", text(&shown)),
                ("aaa", run(cfg, ctx.base_seed, scale.requests)),
            ])
        });
    }
    e.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    kiops(jf(d, "aaa.iops")),
                    f1(jf(d, "aaa.mean_latency_us")),
                    ju(d, "aaa.autonomic.pages_migrated").to_string(),
                    ju(d, "aaa.autonomic.pages_reshaped").to_string(),
                    f2(jf(d, "aaa.migration_write_overhead")),
                ]
            })
            .collect();
        crate::harness::fmt_table(
            &res.title,
            &[
                "Variant",
                "IOPS",
                "Mean latency (us)",
                "Pages migrated",
                "Pages reshaped",
                "Write overhead",
            ],
            &rows,
        )
    });
    e
}
