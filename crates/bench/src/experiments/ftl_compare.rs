//! FTL design-space comparison (paper §4): page mapping à la DFTL vs
//! hybrid log-block mapping à la FAST, plus GC victim-selection policy.

use crate::harness::{jf, js, ju, num, obj, text, uint, Experiment, Scale};
use crate::{f1, f2};
use serde_json::Value;
use triplea_core::ClusterId;
use triplea_flash::FlashGeometry;
use triplea_ftl::{ArrayShape, Ftl, GcPolicy, HybridFtl, LogicalPage};
use triplea_pcie::Topology;
use triplea_sim::SplitMix64;
use triplea_workloads::Zipfian;

/// `(json_key, display_name)` per overwrite stream; keys stay free of
/// dots so the renderer's dotted-path accessors can address them.
const STREAMS: [(&str, &str); 3] = [
    ("seq", "sequential"),
    ("rand", "uniform-random"),
    ("zipf", "zipf-0.99"),
];

/// Geometry under test; the quick scale shrinks the plane so the golden
/// suite's debug-mode run stays fast while keeping utilisation at 85 %.
fn geometry(scale: Scale) -> FlashGeometry {
    FlashGeometry {
        dies: 2,
        planes: 2,
        blocks_per_plane: if scale.requests >= crate::REQUESTS { 256 } else { 32 },
        pages_per_block: 64,
        page_size: 4096,
        endurance: 100_000,
    }
}

/// Hybrid-FTL log region: 1/8 of a plane (32 blocks at full scale, as
/// the original binary used), so the data region stays large enough for
/// the 85 %-of-device working set at every scale.
fn log_blocks(geom: FlashGeometry) -> usize {
    (geom.blocks_per_plane / 8) as usize
}

/// Overwrite stream `name`: working set = 85 % of the FIMM, overwritten
/// 4× — high utilisation is where GC policy and mapping scheme genuinely
/// separate.
fn stream(name: &str, geom: FlashGeometry, seed: u64) -> Vec<u64> {
    let span = geom.total_pages() * 85 / 100;
    let n = (span * 4) as usize;
    let mut rng = SplitMix64::new(seed);
    match name {
        "sequential" => (0..n as u64).map(|i| i % span).collect(),
        "uniform-random" => (0..n).map(|_| rng.next_below(span)).collect(),
        "zipf-0.99" => {
            let zipf = Zipfian::new(span, 0.99);
            (0..n).map(|_| zipf.sample(&mut rng)).collect()
        }
        other => panic!("unknown stream {other:?}"),
    }
}

/// One-FIMM shape for the page-mapped FTL.
fn fimm_shape(geom: FlashGeometry) -> ArrayShape {
    ArrayShape {
        topology: Topology {
            switches: 1,
            clusters_per_switch: 1,
        },
        fimms_per_cluster: 1,
        packages_per_fimm: 1,
        flash: geom,
    }
}

/// Drives the page-mapped FTL with proactive GC exactly as the array
/// does; returns `(write_amplification, erases, map_entries)`.
fn run_page_mapped(geom: FlashGeometry, stream: &[u64], policy: GcPolicy) -> (f64, u64, usize) {
    let shape = fimm_shape(geom);
    let mut ftl = Ftl::new(shape);
    ftl.set_gc_policy(policy);
    let cluster = ClusterId::default();
    for &lpn in stream {
        while ftl.needs_gc(cluster, 0, 4) {
            let Some(work) = ftl.gc_pick(cluster, 0) else {
                break;
            };
            for l in work.valid.clone() {
                ftl.gc_rewrite(l, &work).expect("spare blocks reserved");
            }
            ftl.gc_finish(&work);
        }
        ftl.write_alloc(LogicalPage(lpn), Some((cluster, 0)))
            .expect("write fits after proactive GC");
    }
    let s = ftl.stats();
    let wa = (s.host_writes + s.gc_writes) as f64 / s.host_writes as f64;
    (wa, s.gc_erases, ftl.page_map().override_count())
}

fn run_hybrid(geom: FlashGeometry, log_blocks: usize, stream: &[u64]) -> (f64, u64, usize) {
    let mut ftl = HybridFtl::new(geom, 1, log_blocks);
    for &lpn in stream {
        ftl.write(lpn);
    }
    let s = ftl.stats();
    (s.write_amplification(), s.erases, ftl.mapping_entries())
}

/// Builds the FTL-comparison experiment: one point per overwrite stream
/// (page-mapped vs hybrid) plus one per GC policy (page-mapped only).
pub fn spec(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "ftl_compare",
        "FTL design space: page-mapped (DFTL-class) vs hybrid log-block (FAST-class)",
    );
    for (_, name) in STREAMS {
        e.point(format!("stream/{name}"), move |ctx| {
            let geom = geometry(scale);
            let s = stream(name, geom, ctx.base_seed);
            let (wa_p, er_p, fp_p) = run_page_mapped(geom, &s, GcPolicy::Greedy);
            let (wa_h, er_h, fp_h) = run_hybrid(geom, log_blocks(geom), &s);
            obj([
                ("stream", text(name)),
                ("wa_page", num(wa_p)),
                ("wa_hybrid", num(wa_h)),
                ("erases_page", uint(er_p)),
                ("erases_hybrid", uint(er_h)),
                ("map_entries_page", uint(fp_p as u64)),
                ("map_entries_hybrid", uint(fp_h as u64)),
            ])
        });
    }
    for (label, policy) in [
        ("greedy", GcPolicy::Greedy),
        ("cost-benefit", GcPolicy::CostBenefit),
        ("fifo", GcPolicy::Fifo),
    ] {
        e.point(format!("gc/{label}"), move |ctx| {
            let geom = geometry(scale);
            let mut pairs = vec![("policy".to_string(), text(label))];
            for (key, name) in STREAMS {
                let s = stream(name, geom, ctx.base_seed);
                let (wa, erases, _) = run_page_mapped(geom, &s, policy);
                pairs.push((format!("wa_{key}"), num(wa)));
                pairs.push((format!("erases_{key}"), uint(erases)));
            }
            Value::Object(pairs)
        });
    }
    e.renderer(|res| {
        let mut rows = Vec::new();
        for (_, d) in res.section("stream/") {
            rows.push(vec![
                js(d, "stream"),
                f2(jf(d, "wa_page")),
                f2(jf(d, "wa_hybrid")),
                ju(d, "erases_page").to_string(),
                ju(d, "erases_hybrid").to_string(),
                ju(d, "map_entries_page").to_string(),
                ju(d, "map_entries_hybrid").to_string(),
                f1(jf(d, "map_entries_page") / (ju(d, "map_entries_hybrid").max(1) as f64)),
            ]);
        }
        let mut out = crate::harness::fmt_table(
            &res.title,
            &[
                "Stream",
                "WA page-mapped",
                "WA hybrid",
                "Erases page",
                "Erases hybrid",
                "Map entries page",
                "Map entries hybrid",
                "RAM ratio",
            ],
            &rows,
        );
        out.push_str(
            "\nexpected shape: hybrid needs ~pages-per-block x less mapping RAM but\n\
             amplifies random overwrites far more; page-mapped WA stays near the\n\
             utilisation-driven GC bound.\n",
        );
        let mut rows = Vec::new();
        for (_, d) in res.section("gc/") {
            let mut cells = vec![js(d, "policy")];
            for (key, _) in STREAMS {
                cells.push(f2(jf(d, &format!("wa_{key}"))));
                cells.push(ju(d, &format!("erases_{key}")).to_string());
            }
            rows.push(cells);
        }
        out.push_str(&crate::harness::fmt_table(
            "GC victim selection (page-mapped FTL): WA / erases per stream",
            &[
                "Policy",
                "WA seq",
                "Erases seq",
                "WA random",
                "Erases random",
                "WA zipf",
                "Erases zipf",
            ],
            &rows,
        ));
        out
    });
    e
}
