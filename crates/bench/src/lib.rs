//! Shared harness for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§5–§6); see `DESIGN.md` for the experiment index
//! and `EXPERIMENTS.md` for recorded paper-vs-measured results. Run, for
//! example:
//!
//! ```text
//! cargo run --release -p triplea-bench --bin fig09
//! ```
//!
//! Absolute numbers differ from the paper (its simulator used different,
//! unpublished timing constants); the binaries print the *shape*
//! comparisons the reproduction targets: who wins, by what factor, and
//! where crossovers fall.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

use std::sync::atomic::{AtomicU32, Ordering};

use triplea_core::{Array, ArrayConfig, ArrayConfigBuilder, ManagementMode, RunReport, Trace};

/// Worker-count override for the sharded event loop, set by the `bench`
/// binary's `--workers N` flag. `0` (the default) leaves every
/// experiment on the classic serial engine — the one the committed
/// golden snapshots were blessed with. A non-zero count opts every
/// baseline-derived configuration into the conservative sharded
/// executor, whose simulated results are invariant to the count; CI
/// exploits that by byte-comparing a `--workers 1` suite run against a
/// `--workers 8` run.
static WORKER_OVERRIDE: AtomicU32 = AtomicU32::new(0);

/// Routes every subsequent [`bench_config`] onto `n` sharded workers;
/// `0` restores the serial default.
pub fn set_worker_override(n: u32) {
    WORKER_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The active `--workers` override, if any.
pub fn worker_override() -> Option<u32> {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// The array configuration all experiments run on: the paper's 4×16,
/// 16 TB baseline — on the sharded executor when a
/// [`worker_override`] is active.
pub fn bench_config() -> ArrayConfig {
    let mut cfg = ArrayConfig::paper_baseline();
    cfg.workers = worker_override();
    cfg
}

/// A validating builder over [`bench_config`]; experiment-local edits go
/// through this so every swept configuration is cross-field checked
/// before it reaches the simulator.
pub fn bench_builder() -> ArrayConfigBuilder {
    ArrayConfigBuilder::from_base(bench_config())
}

/// One-shot variant of [`bench_builder`] for sweep points that tweak a
/// couple of fields: applies `f` to the baseline and validates.
///
/// # Panics
///
/// Panics when the tweaked configuration violates a cross-field
/// invariant — an experiment-spec bug that should fail loudly.
pub fn bench_config_with(f: impl FnOnce(&mut ArrayConfig)) -> ArrayConfig {
    bench_builder()
        .tune(f)
        .build()
        .expect("bench experiment configuration validates")
}

/// Requests per run. Long enough for hot pages to be re-accessed ~10x
/// (the paper's traces run for hours; migration only pays off under
/// reuse), small enough that the full suite runs in minutes.
pub const REQUESTS: usize = 100_000;

/// Default inter-arrival gap for the enterprise/HPC workloads, in
/// nanoseconds. 250 ns ⇒ 4 M IOPS offered, which drives the read side of
/// a handful of hot clusters into the bus-bound regime (the paper's
/// link-contention story) while leaving the 64-cluster array's aggregate
/// capacity unstressed.
pub const ENTERPRISE_GAP_NS: u64 = 180;

/// Pages per hot-cluster hot region in the synthetic enterprise traces;
/// together with [`REQUESTS`] this yields roughly tenfold reuse of hot
/// pages.
pub const HOT_REGION_PAGES: u64 = 1_024;

/// Inter-arrival gap for a profile, chosen so that each of its hot
/// clusters sees ≈1.6× its ONFi-bus capacity — the paper replays traces
/// at their natural rates; this reproduces each trace's contention
/// regime on our timing.
pub fn profile_gap_ns(profile: &triplea_workloads::WorkloadProfile, cfg: &ArrayConfig) -> u64 {
    if profile.is_uniform() {
        return ENTERPRISE_GAP_NS;
    }
    let page = cfg.shape.flash.page_size;
    let per_page_ns = cfg.flash_timing.dma_nanos(page) + cfg.flash_timing.onfi.cmd_overhead;
    let per_cluster_iops = 1_000_000_000.0 / per_page_ns as f64;
    let offered =
        (1.6 * per_cluster_iops * profile.hot_clusters as f64 / profile.hot_io_ratio).min(5.0e6);
    (1_000_000_000.0 / offered) as u64
}

/// Builds the standard enterprise/HPC trace for a profile at the full
/// paper scale ([`REQUESTS`]).
pub fn enterprise_trace(
    profile: &triplea_workloads::WorkloadProfile,
    cfg: &ArrayConfig,
    seed: u64,
) -> Trace {
    enterprise_trace_n(profile, cfg, seed, REQUESTS)
}

/// Builds the standard enterprise/HPC trace for a profile with an
/// explicit request count (the harness's [`harness::Scale`] knob).
pub fn enterprise_trace_n(
    profile: &triplea_workloads::WorkloadProfile,
    cfg: &ArrayConfig,
    seed: u64,
    requests: usize,
) -> Trace {
    triplea_workloads::ProfileTrace::new(*profile)
        .requests(requests)
        .gap_ns(profile_gap_ns(profile, cfg))
        .hot_region_pages(HOT_REGION_PAGES)
        .build(cfg, seed)
}

/// Runs one trace through both management modes.
pub fn run_pair(cfg: ArrayConfig, trace: &Trace) -> (RunReport, RunReport) {
    let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(trace);
    let aaa = Array::new(cfg, ManagementMode::Autonomic).run(trace);
    (base, aaa)
}

/// Prints a Markdown table (see [`harness::fmt_table`]).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", harness::fmt_table(title, headers, rows));
}

/// Prints `(x, y)` series as CSV with a comment header (see
/// [`harness::fmt_csv_series`]).
pub fn print_csv_series(name: &str, columns: &[&str], rows: &[Vec<f64>]) {
    print!("{}", harness::fmt_csv_series(name, columns, rows));
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Per-hot-cluster 1.6× bus overload gap for a read micro-benchmark with
/// `hot_clusters` hot clusters: keeps pressure per hot cluster constant
/// as their number grows (Figure 1's "more hot regions = more pressure").
pub fn overload_gap_ns(cfg: &ArrayConfig, hot_clusters: u32) -> u64 {
    // One cluster's ONFi bus moves one 4 KB page (+overhead) in
    // ~2.66 µs => ~376 kIOPS per cluster.
    let page = cfg.shape.flash.page_size;
    let per_page_ns = cfg.flash_timing.dma_nanos(page) + cfg.flash_timing.onfi.cmd_overhead;
    let per_cluster_iops = 1_000_000_000.0 / per_page_ns as f64;
    let offered = per_cluster_iops * 1.6 * hot_clusters.max(1) as f64;
    (1_000_000_000.0 / offered) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_gap_scales_inversely_with_hot_count() {
        let cfg = bench_config();
        let one = overload_gap_ns(&cfg, 1);
        let four = overload_gap_ns(&cfg, 4);
        assert!(one > 3 * four && one < 5 * four, "one={one} four={four}");
        assert_eq!(overload_gap_ns(&cfg, 0), one, "zero clamps to one");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.257), "1.26");
        assert_eq!(f3(0.12345), "0.123");
    }
}
