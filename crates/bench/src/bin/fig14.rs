//! Figure 14: link- and storage-contention times of Triple-A normalized
//! to the baseline under varying network sizes.
//!
//! Paper shape: link contention is almost completely eliminated at every
//! size; storage contention shrinks steadily as the network grows (it is
//! bounded by the requests targeting each cluster, while link contention
//! is not).

use triplea_bench::{bench_config, f2, overload_gap_ns, print_table, run_pair, REQUESTS};
use triplea_workloads::Microbench;

fn main() {
    let mut rows = Vec::new();
    for cps in [8u32, 12, 16, 20] {
        let cfg = bench_config().with_clusters_per_switch(cps);
        let gap = overload_gap_ns(&cfg, 4);
        let trace = Microbench::read()
            .hot_clusters(4)
            .same_switch()
            .requests(REQUESTS)
            .gap_ns(gap)
            .build(&cfg, 0xF14);
        let (base, aaa) = run_pair(cfg, &trace);
        let link = aaa.avg_link_contention_us() / base.avg_link_contention_us().max(1e-9);
        let storage = aaa.avg_storage_contention_us() / base.avg_storage_contention_us().max(1e-9);
        rows.push(vec![
            format!("4x{cps}"),
            f2(link),
            f2(storage),
            format!("{:.1}", base.avg_link_contention_us()),
            format!("{:.1}", aaa.avg_link_contention_us()),
        ]);
    }
    print_table(
        "Figure 14: contention times normalized to baseline vs network size",
        &[
            "Network",
            "Norm. link contention",
            "Norm. storage contention",
            "Base link (us)",
            "AAA link (us)",
        ],
        &rows,
    );
}
