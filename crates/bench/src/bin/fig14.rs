//! Figure 14: link- and storage-contention times vs network size. Thin
//! wrapper over the `fig14` experiment spec; `bench all` runs the same
//! spec in parallel and persists `results/fig14.json`.

fn main() {
    triplea_bench::experiments::run_and_print("fig14");
}
