//! Figure 16: latency time-series under baseline, naive migration, and
//! shadow cloning. Thin wrapper over the `fig16` experiment spec;
//! `bench all` runs the same spec in parallel and persists
//! `results/fig16.json`.

fn main() {
    triplea_bench::experiments::run_and_print("fig16");
}
