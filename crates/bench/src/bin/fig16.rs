//! Figure 16: latency time-series of the `read` micro-benchmark under
//! (a) the non-autonomic array, (b) Triple-A with *naive* data migration
//! (re-reading migrated data from the hot cluster), and (c/d) Triple-A
//! with shadow cloning.
//!
//! Paper shape: the baseline's series sits high; naive migration shows
//! interference spikes while migrations run; shadow cloning removes most
//! of that overhead, and the full Triple-A series settles far below the
//! baseline once the layout has been reshaped.

use triplea_bench::{bench_config, f1, overload_gap_ns, print_csv_series, print_table, REQUESTS};
use triplea_core::{Array, ArrayConfig, ManagementMode, RunReport};
use triplea_workloads::Microbench;

fn run(cfg: ArrayConfig, mode: ManagementMode, naive: bool) -> RunReport {
    let mut cfg = cfg.with_series(true);
    cfg.autonomic.naive_migration = naive;
    let gap = overload_gap_ns(&cfg, 4);
    let trace = Microbench::read()
        .hot_clusters(4)
        .requests(REQUESTS)
        .gap_ns(gap)
        .build(&cfg, 0xF16);
    Array::new(cfg, mode).run(&trace)
}

fn main() {
    let cfg = bench_config();
    let runs = [
        ("baseline", run(cfg, ManagementMode::NonAutonomic, false)),
        ("naive-migration", run(cfg, ManagementMode::Autonomic, true)),
        ("shadow-cloning", run(cfg, ManagementMode::Autonomic, false)),
    ];

    let mut rows = Vec::new();
    let mut curves = Vec::new();
    for (i, (name, report)) in runs.iter().enumerate() {
        rows.push(vec![
            name.to_string(),
            f1(report.mean_latency_us()),
            f1(report.latency_percentile_us(0.99)),
            format!("{:.0}K", report.iops() / 1e3),
            report.autonomic_stats().migrations_started.to_string(),
        ]);
        for (t, lat_us) in report.series().thin(150) {
            curves.push(vec![i as f64, t.as_ms_f64(), lat_us]);
        }
    }
    print_table(
        "Figure 16: migration-overhead ablation",
        &["Series", "Mean (us)", "p99 (us)", "IOPS", "Migrations"],
        &rows,
    );
    print_csv_series(
        "fig16 series (series: 0=baseline, 1=naive, 2=shadow)",
        &["series", "submit_ms", "latency_us"],
        &curves,
    );
}
