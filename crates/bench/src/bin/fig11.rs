//! Figure 11: per-workload latency CDFs on the non-autonomic array and
//! Triple-A. Thin wrapper over the `fig11` experiment spec; `bench all`
//! runs the same spec in parallel and persists `results/fig11.json`.

fn main() {
    triplea_bench::experiments::run_and_print("fig11");
}
