//! Figure 11: per-workload latency CDFs on the non-autonomic array and
//! Triple-A, for the six workloads the paper plots (mds, msnfs, proj,
//! prxy, websql, g-eigen).
//!
//! Paper shape: Triple-A shortens the distribution across the board and
//! cuts the long tail dramatically; msnfs improves least (its hot
//! clusters are only mildly hot), websql improves latency but not IOPS
//! (hot clusters share a switch).

use triplea_bench::{bench_config, enterprise_trace, f1, print_csv_series, print_table, run_pair};
use triplea_workloads::WorkloadProfile;

const WORKLOADS: [&str; 6] = ["mds", "msnfs", "proj", "prxy", "websql", "g-eigen"];

fn main() {
    let cfg = bench_config();
    let mut rows = Vec::new();
    let mut curves = Vec::new();
    for (w, name) in WORKLOADS.iter().enumerate() {
        let profile = WorkloadProfile::by_name(name).expect("known workload");
        let trace = enterprise_trace(&profile, &cfg, 0xF11);
        let (base, aaa) = run_pair(cfg, &trace);
        rows.push(vec![
            name.to_string(),
            f1(base.latency_percentile_us(0.5)),
            f1(aaa.latency_percentile_us(0.5)),
            f1(base.latency_percentile_us(0.99)),
            f1(aaa.latency_percentile_us(0.99)),
        ]);
        for (mode, report) in [(0.0, &base), (1.0, &aaa)] {
            let cdf = report.latency_cdf_us();
            let step = (cdf.len() / 24).max(1);
            for (us, frac) in cdf.into_iter().step_by(step) {
                curves.push(vec![w as f64, mode, us, frac]);
            }
        }
    }
    print_table(
        "Figure 11: latency percentiles, baseline vs Triple-A",
        &[
            "Workload",
            "Base p50 (us)",
            "AAA p50 (us)",
            "Base p99 (us)",
            "AAA p99 (us)",
        ],
        &rows,
    );
    print_csv_series(
        "fig11 CDFs (workload index per WORKLOADS order; mode 0=base, 1=triple-a)",
        &["workload", "mode", "latency_us", "cdf"],
        &curves,
    );
}
