//! Replay harness: run any trace — a CSV file or a named Table-1
//! workload — through the array under either (or both) management modes.
//!
//! ```text
//! replay [OPTIONS]
//!   --csv <FILE>              replay a CSV trace (time_ns,op,lpn,pages)
//!   --workload <NAME>         synthesize a Table-1 workload (default g-eigen)
//!   --requests <N>            synthetic request count   [default 100000]
//!   --gap-ns <NS>             synthetic inter-arrival   [default profile-tuned]
//!   --mode <both|aaa|base>    which arrays to run       [default both]
//!   --clusters-per-switch <N> network width             [default 16]
//!   --mlc                     consumer-MLC flash timing (default SLC)
//!   --seed <N>                generator seed            [default 1]
//!   --save-csv <FILE>         write the (synthetic) trace out as CSV
//! ```
//!
//! Example:
//!
//! ```text
//! cargo run --release -p triplea-bench --bin replay -- --workload prxy --mode both
//! ```

use std::fs::File;
use std::process::exit;
use std::sync::Arc;

use triplea_bench::harness::{jf, ju, report_json, Experiment, Runner, Scale};
use triplea_bench::{enterprise_trace, f1, profile_gap_ns, HOT_REGION_PAGES};
use triplea_core::{Array, ArrayConfig, ManagementMode, Trace};
use triplea_flash::FlashTiming;
use triplea_workloads::{csv, ProfileTrace, WorkloadProfile};

struct Opts {
    csv: Option<String>,
    workload: String,
    requests: usize,
    gap_ns: Option<u64>,
    mode: String,
    cps: u32,
    mlc: bool,
    seed: u64,
    save_csv: Option<String>,
}

fn usage_and_exit(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nsee `--help` in the module docs of replay.rs");
    exit(2)
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        csv: None,
        workload: "g-eigen".to_string(),
        requests: 100_000,
        gap_ns: None,
        mode: "both".to_string(),
        cps: 16,
        mlc: false,
        seed: 1,
        save_csv: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| usage_and_exit("missing value for flag"))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => o.csv = Some(value(&mut i)),
            "--workload" => o.workload = value(&mut i),
            "--requests" => {
                o.requests = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad --requests"))
            }
            "--gap-ns" => {
                o.gap_ns = Some(
                    value(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage_and_exit("bad --gap-ns")),
                )
            }
            "--mode" => o.mode = value(&mut i),
            "--clusters-per-switch" => {
                o.cps = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad --clusters-per-switch"))
            }
            "--mlc" => o.mlc = true,
            "--seed" => {
                o.seed = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad --seed"))
            }
            "--save-csv" => o.save_csv = Some(value(&mut i)),
            other => usage_and_exit(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    o
}

fn main() {
    let o = parse_opts();
    let cfg = ArrayConfig::builder()
        .clusters_per_switch(o.cps)
        .tune(|c| {
            if o.mlc {
                c.flash_timing = FlashTiming::mlc();
            }
        })
        .build()
        .unwrap_or_else(|e| usage_and_exit(&format!("invalid configuration: {e}")));

    let trace: Trace = if let Some(path) = &o.csv {
        let file = File::open(path)
            .unwrap_or_else(|e| usage_and_exit(&format!("cannot open {path}: {e}")));
        csv::parse_trace(file).unwrap_or_else(|e| usage_and_exit(&e.to_string()))
    } else {
        let profile = WorkloadProfile::by_name(&o.workload).unwrap_or_else(|| {
            usage_and_exit(&format!(
                "unknown workload {:?}; known: {}",
                o.workload,
                WorkloadProfile::table1()
                    .iter()
                    .map(|p| p.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        });
        match o.gap_ns {
            Some(gap) => ProfileTrace::new(profile)
                .requests(o.requests)
                .gap_ns(gap)
                .hot_region_pages(HOT_REGION_PAGES)
                .build(&cfg, o.seed),
            None if o.requests == 100_000 => enterprise_trace(&profile, &cfg, o.seed),
            None => ProfileTrace::new(profile)
                .requests(o.requests)
                .gap_ns(profile_gap_ns(&profile, &cfg))
                .hot_region_pages(HOT_REGION_PAGES)
                .build(&cfg, o.seed),
        }
    };

    if let Some(path) = &o.save_csv {
        let file = File::create(path)
            .unwrap_or_else(|e| usage_and_exit(&format!("cannot create {path}: {e}")));
        csv::write_trace(file, &trace).unwrap_or_else(|e| usage_and_exit(&e.to_string()));
        println!("wrote {} records to {path}", trace.len());
    }

    // The two management modes are independent runs: drive them through
    // the experiment harness so they execute in parallel.
    let modes: Vec<(&str, ManagementMode)> = match o.mode.as_str() {
        "both" => vec![
            ("non-autonomic", ManagementMode::NonAutonomic),
            ("triple-a", ManagementMode::Autonomic),
        ],
        "base" => vec![("non-autonomic", ManagementMode::NonAutonomic)],
        "aaa" => vec![("triple-a", ManagementMode::Autonomic)],
        _ => usage_and_exit("--mode must be both, aaa, or base"),
    };
    let title = format!(
        "replay: {} ({} requests, 4x{} array)",
        o.csv.as_deref().unwrap_or(&o.workload),
        trace.len(),
        o.cps
    );
    let title: &'static str = Box::leak(title.into_boxed_str());
    let trace = Arc::new(trace);
    let mut exp = Experiment::new("replay", title);
    for (label, mode) in modes {
        let trace = Arc::clone(&trace);
        let cfg = cfg.clone();
        exp.point(label, move |_| {
            report_json(&Array::new(cfg.clone(), mode).run(&trace))
        });
    }
    exp.renderer(|res| {
        let rows: Vec<Vec<String>> = res
            .points
            .iter()
            .map(|p| {
                let d = &p.data;
                vec![
                    p.label.clone(),
                    ju(d, "completed").to_string(),
                    format!("{:.0}", jf(d, "iops")),
                    f1(jf(d, "mean_latency_us")),
                    f1(jf(d, "p99_us")),
                    f1(jf(d, "link_contention_us")),
                    f1(jf(d, "storage_contention_us")),
                    ju(d, "autonomic.migrations_started").to_string(),
                ]
            })
            .collect();
        triplea_bench::harness::fmt_table(
            &res.title,
            &[
                "Mode",
                "Completed",
                "IOPS",
                "Mean (us)",
                "p99 (us)",
                "Link-cont. (us)",
                "Storage-cont. (us)",
                "Migrations",
            ],
            &rows,
        )
    });
    let result = Runner::new().run(&exp, Scale::full());
    print!("{}", exp.render(&result));
}
