//! Failure-storm scenarios: power-loss recovery, hot-spare rebuild,
//! and the combined storm. See `experiments::failure_storm`.

fn main() {
    triplea_bench::experiments::run_and_print("failure_storm");
}
