//! §6.5 wear-out analysis: extra writes induced by autonomic data
//! migration and the resulting flash-lifetime reduction.
//!
//! Paper shape: in the worst case migration adds ~34 % extra writes,
//! i.e. ~23 % lifetime reduction — a trade the paper accepts because
//! unboxing SSDs cuts array cost by ~50 %.

use triplea_bench::{bench_config, enterprise_trace, f1, print_table, run_pair};
use triplea_workloads::WorkloadProfile;

fn main() {
    let cfg = bench_config();
    let mut rows = Vec::new();
    let mut worst = 0.0f64;
    for profile in WorkloadProfile::table1() {
        if profile.read_ratio >= 1.0 {
            continue; // no host writes: overhead ratio undefined
        }
        let trace = enterprise_trace(profile, &cfg, 0x3EA);
        let (_, aaa) = run_pair(cfg, &trace);
        let stats = aaa.ftl_stats();
        let overhead = aaa.migration_write_overhead();
        let lifetime_loss = overhead / (1.0 + overhead);
        worst = worst.max(overhead);
        rows.push(vec![
            profile.name.to_string(),
            stats.host_writes.to_string(),
            stats.migration_writes.to_string(),
            stats.gc_writes.to_string(),
            f1(overhead * 100.0),
            f1(lifetime_loss * 100.0),
            format!("{:.4}", aaa.wear().mean_erase_count),
        ]);
    }
    print_table(
        "Wear-out: extra writes from autonomic migration (paper worst case: +34% writes, -23% lifetime)",
        &[
            "Workload",
            "Host writes",
            "Migration writes",
            "GC writes",
            "Extra writes (%)",
            "Lifetime loss (%)",
            "Mean erase count",
        ],
        &rows,
    );
    println!(
        "\nworst case measured: +{:.0}% writes => -{:.0}% lifetime \
         (offset by the ~50% cost reduction of unboxing, §6.5)",
        worst * 100.0,
        worst / (1.0 + worst) * 100.0
    );
}
