//! §6.5 wear-out analysis: extra writes induced by autonomic migration.
//! Thin wrapper over the `wearout` experiment spec; `bench all` runs
//! the same spec in parallel and persists `results/wearout.json`.

fn main() {
    triplea_bench::experiments::run_and_print("wearout");
}
