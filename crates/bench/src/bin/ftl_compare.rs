//! FTL design-space comparison: page-mapped (DFTL-class) vs hybrid
//! log-block (FAST-class) translation, plus GC victim-selection policy.
//! Thin wrapper over the `ftl_compare` experiment spec; `bench all`
//! runs the same spec in parallel and persists
//! `results/ftl_compare.json`.

fn main() {
    triplea_bench::experiments::run_and_print("ftl_compare");
}
