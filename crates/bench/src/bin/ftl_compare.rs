//! FTL design-space comparison (paper §4: the flash control logic "can
//! be implemented in many different ways" — page mapping à la DFTL
//! [ref. 19] vs hybrid log-block mapping à la FAST [ref. 29]).
//!
//! Replays identical overwrite streams through both translation schemes
//! on one FIMM and reports write amplification, erases, and mapping-RAM
//! footprint. Expected shape: the page-mapped FTL wins on write
//! amplification (especially under random overwrites); the hybrid FTL
//! wins on mapping footprint by orders of magnitude.

use triplea_bench::{f1, f2, print_table};
use triplea_core::ClusterId;
use triplea_flash::FlashGeometry;
use triplea_ftl::{ArrayShape, Ftl, GcPolicy, HybridFtl, LogicalPage};
use triplea_pcie::Topology;
use triplea_sim::SplitMix64;
use triplea_workloads::Zipfian;

/// One-FIMM shape for the page-mapped FTL.
fn fimm_shape(geom: FlashGeometry) -> ArrayShape {
    ArrayShape {
        topology: Topology {
            switches: 1,
            clusters_per_switch: 1,
        },
        fimms_per_cluster: 1,
        packages_per_fimm: 1,
        flash: geom,
    }
}

/// Drives the page-mapped FTL with GC exactly as the array does.
fn run_page_mapped(geom: FlashGeometry, stream: &[u64]) -> (f64, u64, usize) {
    run_page_mapped_with(geom, stream, GcPolicy::Greedy)
}

fn run_page_mapped_with(
    geom: FlashGeometry,
    stream: &[u64],
    policy: GcPolicy,
) -> (f64, u64, usize) {
    let shape = fimm_shape(geom);
    let mut ftl = Ftl::new(shape);
    ftl.set_gc_policy(policy);
    let cluster = ClusterId::default();
    for &lpn in stream {
        // Proactive GC, as the array does: reclaim while spare blocks
        // remain so rewrites always have somewhere to land.
        while ftl.needs_gc(cluster, 0, 4) {
            let Some(work) = ftl.gc_pick(cluster, 0) else {
                break;
            };
            for l in work.valid.clone() {
                ftl.gc_rewrite(l, &work).expect("spare blocks reserved");
            }
            ftl.gc_finish(&work);
        }
        ftl.write_alloc(LogicalPage(lpn), Some((cluster, 0)))
            .expect("write fits after proactive GC");
    }
    let s = ftl.stats();
    let wa = (s.host_writes + s.gc_writes) as f64 / s.host_writes as f64;
    // Page-mapped footprint: one entry per written logical page.
    let footprint = ftl.page_map().override_count();
    (wa, s.gc_erases, footprint)
}

fn run_hybrid(geom: FlashGeometry, log_blocks: usize, stream: &[u64]) -> (f64, u64, usize) {
    let mut ftl = HybridFtl::new(geom, 1, log_blocks);
    for &lpn in stream {
        ftl.write(lpn);
    }
    let s = ftl.stats();
    (s.write_amplification(), s.erases, ftl.mapping_entries())
}

fn main() {
    let geom = FlashGeometry {
        dies: 2,
        planes: 2,
        blocks_per_plane: 256,
        pages_per_block: 64,
        page_size: 4096,
        endurance: 100_000,
    };
    // Working set = 85% of the FIMM, overwritten 4x: high utilisation is
    // where GC policy and mapping scheme genuinely separate.
    let span = geom.total_pages() * 85 / 100;
    let n = (span * 4) as usize;
    let mut rng = SplitMix64::new(0xF71);
    let zipf = Zipfian::new(span, 0.99);

    let streams: Vec<(&str, Vec<u64>)> = vec![
        ("sequential", (0..n as u64).map(|i| i % span).collect()),
        (
            "uniform-random",
            (0..n).map(|_| rng.next_below(span)).collect(),
        ),
        ("zipf-0.99", (0..n).map(|_| zipf.sample(&mut rng)).collect()),
    ];

    let mut rows = Vec::new();
    for (name, stream) in &streams {
        let (wa_p, er_p, fp_p) = run_page_mapped(geom, stream);
        let (wa_h, er_h, fp_h) = run_hybrid(geom, 32, stream);
        rows.push(vec![
            name.to_string(),
            f2(wa_p),
            f2(wa_h),
            er_p.to_string(),
            er_h.to_string(),
            fp_p.to_string(),
            fp_h.to_string(),
            f1(fp_p as f64 / fp_h.max(1) as f64),
        ]);
    }
    print_table(
        "FTL design space: page-mapped (DFTL-class) vs hybrid log-block (FAST-class)",
        &[
            "Stream",
            "WA page-mapped",
            "WA hybrid",
            "Erases page",
            "Erases hybrid",
            "Map entries page",
            "Map entries hybrid",
            "RAM ratio",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: hybrid needs ~pages-per-block x less mapping RAM but\n\
         amplifies random overwrites far more; page-mapped WA stays near the\n\
         utilisation-driven GC bound."
    );

    // Second axis: GC victim-selection policy on the page-mapped FTL.
    let mut rows = Vec::new();
    for (name, policy) in [
        ("greedy", GcPolicy::Greedy),
        ("cost-benefit", GcPolicy::CostBenefit),
        ("fifo", GcPolicy::Fifo),
    ] {
        let mut cells = vec![name.to_string()];
        for (_, stream) in &streams {
            let (wa, erases, _) = run_page_mapped_with(geom, stream, policy);
            cells.push(f2(wa));
            cells.push(erases.to_string());
        }
        rows.push(cells);
    }
    print_table(
        "GC victim selection (page-mapped FTL): WA / erases per stream",
        &[
            "Policy",
            "WA seq",
            "Erases seq",
            "WA random",
            "Erases random",
            "WA zipf",
            "Erases zipf",
        ],
        &rows,
    );
}
