//! Figure 15: breakdown of average request time on both arrays under
//! varying network sizes — queue stalls (RC, switch), direct link and
//! storage waits, pure FIMM service, and network overhead.
//!
//! Paper shape: with Triple-A the stall components shrink as the network
//! grows and all but vanish at the largest sizes, leaving FIMM service
//! dominant.

use triplea_bench::{bench_config, f1, overload_gap_ns, print_table, run_pair, REQUESTS};
use triplea_core::RunReport;
use triplea_workloads::Microbench;

fn row(label: String, r: &RunReport) -> Vec<String> {
    vec![
        label,
        f1(r.avg_rc_stall_us()),
        f1(r.avg_switch_stall_us()),
        f1(r.avg_direct_link_wait_us()),
        f1(r.avg_direct_storage_wait_us()),
        f1(r.avg_fimm_service_us()),
        f1(r.avg_network_us()),
        f1(r.mean_latency_us()),
    ]
}

fn main() {
    let mut rows = Vec::new();
    for cps in [8u32, 12, 16, 20] {
        let cfg = bench_config().with_clusters_per_switch(cps);
        let gap = overload_gap_ns(&cfg, 4);
        let trace = Microbench::read()
            .hot_clusters(4)
            .same_switch()
            .requests(REQUESTS)
            .gap_ns(gap)
            .build(&cfg, 0xF15);
        let (base, aaa) = run_pair(cfg, &trace);
        rows.push(row(format!("4x{cps} baseline"), &base));
        rows.push(row(format!("4x{cps} triple-a"), &aaa));
    }
    print_table(
        "Figure 15: execution-time breakdown (all in us per request)",
        &[
            "Config",
            "RC stall",
            "Switch stall",
            "Link wait",
            "Storage wait",
            "FIMM service",
            "Network",
            "Total mean",
        ],
        &rows,
    );
}
