//! Figure 15: execution-time breakdown on both arrays vs network size.
//! Thin wrapper over the `fig15` experiment spec; `bench all` runs the
//! same spec in parallel and persists `results/fig15.json`.

fn main() {
    triplea_bench::experiments::run_and_print("fig15");
}
