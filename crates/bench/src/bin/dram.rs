//! §6.6 — effectiveness of DRAM relocation: sweep the per-cluster
//! write-back buffer from queue-scale to DRAM-scale and measure how
//! write bursts behave.
//!
//! Paper claim: relocating the SSDs' on-board DRAM to the management
//! module preserves its caching function while the autonomic layer (not
//! the DRAM) resolves link/storage contention. Expected shape: ack
//! latency of bursty writes collapses once the buffer is DRAM-scale,
//! while *read* contention (the autonomic layer's domain) is unaffected
//! by buffer size.

use triplea_bench::{bench_config, f1, print_table, REQUESTS};
use triplea_core::{Array, ManagementMode};
use triplea_workloads::Microbench;

fn main() {
    let mut rows = Vec::new();
    for buffer_pages in [64usize, 256, 1_024, 2_048, 8_192] {
        let mut cfg = bench_config();
        cfg.write_buffer_pages = buffer_pages;
        // Bursty checkpoint-style writes into two clusters.
        let trace = Microbench::write()
            .hot_clusters(2)
            .bursty(2_000_000, 6_000_000)
            .gap_ns(1_200)
            .requests(REQUESTS / 2)
            .build(&cfg, 0xD7A);
        let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
        rows.push(vec![
            format!("{buffer_pages} pages ({} MB)", buffer_pages * 4 / 1024),
            f1(report.mean_latency_us()),
            f1(report.latency_percentile_us(0.99)),
            f1(report.avg_storage_contention_us()),
            report.autonomic_stats().write_redirects.to_string(),
        ]);
    }
    print_table(
        "DRAM relocation (§6.6): write-burst ack latency vs buffer size",
        &[
            "Write buffer per cluster",
            "Ack mean (us)",
            "Ack p99 (us)",
            "Storage-cont. (us)",
            "Write redirects",
        ],
        &rows,
    );
    println!(
        "\npaper shape: DRAM-scale buffering absorbs bursts (acks near-instant);\n\
         buffer size does not address link/storage contention itself — that\n\
         remains the autonomic manager's job."
    );
}
