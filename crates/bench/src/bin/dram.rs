//! §6.6 DRAM relocation: write-burst ack latency vs per-cluster buffer
//! size. Thin wrapper over the `dram` experiment spec; `bench all` runs
//! the same spec in parallel and persists `results/dram.json`.

fn main() {
    triplea_bench::experiments::run_and_print("dram");
}
