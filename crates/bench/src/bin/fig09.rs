//! Figure 9: latency and IOPS of Triple-A normalized to the
//! non-autonomic all-flash array, across the enterprise and HPC
//! workloads.
//!
//! Paper shape: ~5× lower average latency and ~2× IOPS on average;
//! g-eigen the standout (≈98 % latency cut, 7.8× IOPS); cfs and web
//! (no hot clusters) unchanged; websql's IOPS gain limited (~2×) because
//! its hot clusters share one switch.

use triplea_bench::{bench_config, enterprise_trace, f2, print_table, run_pair};
use triplea_workloads::WorkloadProfile;

fn main() {
    let cfg = bench_config();
    let mut rows = Vec::new();
    let mut lat_ratios = Vec::new();
    let mut iops_ratios = Vec::new();
    for profile in WorkloadProfile::table1() {
        let trace = enterprise_trace(profile, &cfg, 0xF19);
        let (base, aaa) = run_pair(cfg, &trace);
        let lat_ratio = aaa.mean_latency_us() / base.mean_latency_us().max(1e-9);
        let iops_ratio = aaa.iops() / base.iops().max(1e-9);
        if !profile.is_uniform() {
            lat_ratios.push(lat_ratio);
            iops_ratios.push(iops_ratio);
        }
        rows.push(vec![
            profile.name.to_string(),
            f2(lat_ratio),
            f2(iops_ratio),
            format!("{:.0}", base.mean_latency_us()),
            format!("{:.0}", aaa.mean_latency_us()),
            format!("{:.0}K", base.iops() / 1e3),
            format!("{:.0}K", aaa.iops() / 1e3),
            format!("{}", aaa.autonomic_stats().migrations_started),
        ]);
    }
    print_table(
        "Figure 9: Triple-A normalized to non-autonomic baseline",
        &[
            "Workload",
            "Norm. latency (lower=better)",
            "Norm. IOPS (higher=better)",
            "Base lat (us)",
            "AAA lat (us)",
            "Base IOPS",
            "AAA IOPS",
            "Migrations",
        ],
        &rows,
    );
    let gm_lat = geo_mean(&lat_ratios);
    let gm_iops = geo_mean(&iops_ratios);
    println!(
        "\nhot-cluster workloads geometric mean: normalized latency {gm_lat:.2} \
         (paper: ~0.2), normalized IOPS {gm_iops:.2} (paper: ~2.0)"
    );
}

fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}
