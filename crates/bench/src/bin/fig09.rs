//! Figure 9: latency and IOPS of Triple-A normalized to the
//! non-autonomic array across the enterprise/HPC workloads. Thin
//! wrapper over the `fig09` experiment spec; `bench all` runs the same
//! spec in parallel and persists `results/fig09.json`.

fn main() {
    triplea_bench::experiments::run_and_print("fig09");
}
