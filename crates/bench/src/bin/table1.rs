//! Table 1: workload characteristics — the paper's reported values
//! versus what our synthetic traces actually exhibit on the 4×16 array.

use triplea_bench::{bench_config, enterprise_trace, f1, f3, print_table};
use triplea_workloads::{analyze, WorkloadProfile};

fn main() {
    let cfg = bench_config();
    let mut rows = Vec::new();
    for profile in WorkloadProfile::table1() {
        let trace = enterprise_trace(profile, &cfg, 0x7AB1);
        let stats = analyze(&trace, &cfg.shape);
        rows.push(vec![
            profile.name.to_string(),
            format!(
                "{} / {}",
                f1(profile.read_ratio * 100.0),
                f1(stats.read_ratio * 100.0)
            ),
            format!(
                "{} / {}",
                f1(profile.read_randomness * 100.0),
                f1(stats.read_randomness * 100.0)
            ),
            format!(
                "{} / {}",
                f1(profile.write_randomness * 100.0),
                f1(stats.write_randomness * 100.0)
            ),
            format!("{} / {}", profile.hot_clusters, stats.hot_clusters),
            format!("{} / {}", f3(profile.hot_io_ratio), f3(stats.hot_io_ratio)),
        ]);
    }
    print_table(
        "Table 1: workload characteristics (paper / measured on synthetic trace)",
        &[
            "Workload",
            "Read %",
            "Read rand %",
            "Write rand %",
            "# hot clusters",
            "I/O ratio on hot",
        ],
        &rows,
    );
}
