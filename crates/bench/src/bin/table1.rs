//! Table 1: workload characteristics, paper vs measured synthetic
//! traces. Thin wrapper over the `table1` experiment spec; `bench all`
//! runs the same spec in parallel and persists `results/table1.json`.

fn main() {
    triplea_bench::experiments::run_and_print("table1");
}
