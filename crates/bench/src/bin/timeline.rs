//! Traced run: event counts, per-component instruments, and a timeline
//! excerpt from the array-wide recorder, both management modes. Thin
//! wrapper over the `timeline` experiment spec; `bench timeline` (or
//! `bench all`) runs the same spec and additionally persists
//! `results/timeline.json` + `results/timeline.trace.json` (Chrome
//! `trace_event` format, viewable in chrome://tracing or Perfetto).

fn main() {
    triplea_bench::experiments::run_and_print("timeline");
}
