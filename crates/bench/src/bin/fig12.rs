//! Figure 12: hot-cluster sensitivity of the read micro-benchmark on
//! both arrays. Thin wrapper over the `fig12` experiment spec; `bench
//! all` runs the same spec in parallel and persists
//! `results/fig12.json`.

fn main() {
    triplea_bench::experiments::run_and_print("fig12");
}
