//! Figure 12: hot-cluster sensitivity — IOPS and latency of the `read`
//! micro-benchmark as the number of hot clusters grows, on both arrays.
//!
//! Paper shape: the baseline's latency worsens as hot clusters multiply
//! (more requests suffer contention); Triple-A holds latency roughly
//! stable and its IOPS keeps improving with the offered load.

use triplea_bench::{bench_config, f1, overload_gap_ns, print_table, run_pair, REQUESTS};
use triplea_workloads::Microbench;

fn main() {
    let cfg = bench_config();
    let mut rows = Vec::new();
    for hot in [1u32, 2, 4, 6, 8, 10, 12, 14] {
        // Constant per-hot-cluster pressure and constant run duration:
        // scale the request count with the number of hot clusters.
        let gap = overload_gap_ns(&cfg, hot);
        let n = REQUESTS * hot as usize;
        let trace = Microbench::read()
            .hot_clusters(hot)
            .requests(n)
            .gap_ns(gap)
            .build(&cfg, 0xF12);
        let (base, aaa) = run_pair(cfg, &trace);
        rows.push(vec![
            hot.to_string(),
            format!("{:.0}K", base.iops() / 1e3),
            format!("{:.0}K", aaa.iops() / 1e3),
            f1(base.mean_latency_us()),
            f1(aaa.mean_latency_us()),
            format!("{:.2}", aaa.iops() / base.iops().max(1e-9)),
        ]);
    }
    print_table(
        "Figure 12: hot-cluster sensitivity (read micro-benchmark)",
        &[
            "Hot clusters",
            "Base IOPS",
            "AAA IOPS",
            "Base latency (us)",
            "AAA latency (us)",
            "IOPS gain",
        ],
        &rows,
    );
}
