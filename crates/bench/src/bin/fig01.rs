//! Figure 1 (motivation): latency CDF of the **non-autonomic** array as
//! the number of hot regions grows. Thin wrapper over the `fig01`
//! experiment spec (`triplea_bench::experiments::fig01`); `bench all`
//! runs the same spec in parallel and persists `results/fig01.json`.

fn main() {
    triplea_bench::experiments::run_and_print("fig01");
}
