//! Figure 1 (motivation): cumulative distribution function of request
//! latency on the **non-autonomic** array as the number of hot regions
//! grows.
//!
//! Paper shape: more hot regions ⇒ heavier tails; at 8 hot regions the
//! paper reports 2.4× (link) and 6.5× (storage) degradation versus the
//! uniform case.

use triplea_bench::{bench_config, f1, overload_gap_ns, print_csv_series, print_table, REQUESTS};
use triplea_core::{Array, ManagementMode};
use triplea_workloads::Microbench;

fn main() {
    let cfg = bench_config();
    let mut rows = Vec::new();
    let mut curves = Vec::new();
    for hot in [0u32, 2, 4, 8] {
        // Constant per-hot-cluster pressure AND constant run duration:
        // request count scales with the number of hot regions.
        let gap = overload_gap_ns(&cfg, hot.max(1));
        let n = REQUESTS / 2 * hot.max(2) as usize;
        let trace = Microbench::read()
            .hot_clusters(hot)
            .requests(n)
            .gap_ns(gap)
            .build(&cfg, 0x0F1);
        let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
        rows.push(vec![
            hot.to_string(),
            f1(report.mean_latency_us()),
            f1(report.latency_percentile_us(0.5)),
            f1(report.latency_percentile_us(0.99)),
            f1(report.avg_link_contention_us()),
            f1(report.avg_storage_contention_us()),
        ]);
        let cdf = report.latency_cdf_us();
        let step = (cdf.len() / 24).max(1);
        for (us, frac) in cdf.into_iter().step_by(step) {
            curves.push(vec![hot as f64, us, frac]);
        }
    }
    print_table(
        "Figure 1: latency vs number of hot regions (non-autonomic)",
        &[
            "Hot regions",
            "Mean (us)",
            "p50 (us)",
            "p99 (us)",
            "Link-cont. (us)",
            "Storage-cont. (us)",
        ],
        &rows,
    );
    print_csv_series("fig01 CDFs", &["hot_regions", "latency_us", "cdf"], &curves);
}
