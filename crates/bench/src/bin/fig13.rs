//! Figure 13: network-size sensitivity — IOPS and latency of Triple-A
//! normalized to the baseline as the number of clusters per switch
//! grows (4×8 … 4×20; 8 TB … 20 TB arrays).
//!
//! Paper shape: Triple-A's advantage grows with network size, because a
//! wider switch offers more cold siblings to absorb the hot clusters'
//! overflow.

use triplea_bench::{bench_config, f2, overload_gap_ns, print_table, run_pair, REQUESTS};
use triplea_workloads::Microbench;

fn main() {
    let mut rows = Vec::new();
    for cps in [8u32, 12, 16, 20] {
        let cfg = bench_config().with_clusters_per_switch(cps);
        let gap = overload_gap_ns(&cfg, 4);
        let trace = Microbench::read()
            .hot_clusters(4)
            .same_switch()
            .requests(REQUESTS)
            .gap_ns(gap)
            .build(&cfg, 0xF13);
        let (base, aaa) = run_pair(cfg, &trace);
        rows.push(vec![
            format!("4x{cps}"),
            f2(aaa.iops() / base.iops().max(1e-9)),
            f2(aaa.mean_latency_us() / base.mean_latency_us().max(1e-9)),
            format!("{:.0}K", base.iops() / 1e3),
            format!("{:.0}K", aaa.iops() / 1e3),
        ]);
    }
    print_table(
        "Figure 13: network-size sensitivity (normalized to baseline)",
        &[
            "Network",
            "Norm. IOPS (higher=better)",
            "Norm. latency (lower=better)",
            "Base IOPS",
            "AAA IOPS",
        ],
        &rows,
    );
}
