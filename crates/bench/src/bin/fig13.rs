//! Figure 13: network-size sensitivity, normalized IOPS and latency.
//! Thin wrapper over the `fig13` experiment spec; `bench all` runs the
//! same spec in parallel and persists `results/fig13.json`.

fn main() {
    triplea_bench::experiments::run_and_print("fig13");
}
