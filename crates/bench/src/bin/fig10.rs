//! Figure 10: contention and queue-stall times of Triple-A normalized
//! to the non-autonomic baseline, per workload. Thin wrapper over the
//! `fig10` experiment spec; `bench all` runs the same spec in parallel
//! and persists `results/fig10.json`.

fn main() {
    triplea_bench::experiments::run_and_print("fig10");
}
