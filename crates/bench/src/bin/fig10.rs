//! Figure 10: link-contention, storage-contention, and queue-stall times
//! of Triple-A normalized to the non-autonomic baseline, per workload.
//!
//! Paper shape: link contention almost eliminated; storage contention
//! reduced modestly (~15 %, because Triple-A reshapes within a cluster
//! first); queue stalls cut ~85 %.

use triplea_bench::{bench_config, enterprise_trace, f2, print_table, run_pair};
use triplea_workloads::WorkloadProfile;

fn norm(a: f64, b: f64) -> f64 {
    if b <= 1e-9 {
        1.0
    } else {
        a / b
    }
}

fn main() {
    let cfg = bench_config();
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    let mut n = 0usize;
    for profile in WorkloadProfile::table1() {
        let trace = enterprise_trace(profile, &cfg, 0xF10);
        let (base, aaa) = run_pair(cfg, &trace);
        let link = norm(aaa.avg_link_contention_us(), base.avg_link_contention_us());
        let storage = norm(
            aaa.avg_storage_contention_us(),
            base.avg_storage_contention_us(),
        );
        let stall = norm(aaa.avg_queue_stall_us(), base.avg_queue_stall_us());
        if !profile.is_uniform() {
            sums[0] += link;
            sums[1] += storage;
            sums[2] += stall;
            n += 1;
        }
        rows.push(vec![
            profile.name.to_string(),
            f2(link),
            f2(storage),
            f2(stall),
        ]);
    }
    print_table(
        "Figure 10: contention & stall times normalized to baseline (lower = better)",
        &[
            "Workload",
            "Link contention",
            "Storage contention",
            "Queue stall",
        ],
        &rows,
    );
    println!(
        "\nhot-workload means: link {:.2}, storage {:.2}, queue stall {:.2} \
         (paper: link ≈0.1, storage ≈0.85, stall ≈0.15)",
        sums[0] / n as f64,
        sums[1] / n as f64,
        sums[2] / n as f64,
    );
}
