//! Fault-injection sweep: how gracefully the array (baseline vs
//! Triple-A autonomic management) degrades as deterministic faults are
//! injected at each layer of the stack.
//!
//! Three axes:
//!
//! 1. NAND reliability — transient read faults (ECC retries) plus hard
//!    program/erase failures that grow bad blocks and roll back
//!    in-flight migrations;
//! 2. whole-module events — one FIMM of the hot cluster slowing down
//!    or dying mid-run (degraded reads, Eq. 3 laggard repair);
//! 3. PCI-E TLP corruption — replay latency on every corrupted packet.
//!
//! Every run is seeded and deterministic: same binary, same output,
//! byte for byte. FTL metadata integrity is verified end-to-end after
//! every run — a lost or duplicated page aborts the bench.

use triplea_bench::{bench_config, f1, f2, overload_gap_ns, print_table, REQUESTS};
use triplea_core::{
    Array, ArrayConfig, FaultConfig, FimmFaultEvent, FimmFaultKind, FlashFaultProfile,
    ManagementMode, PcieFaultProfile, RunReport, Trace,
};
use triplea_workloads::Microbench;

const SEED: u64 = 0xFA_017;

fn hot_trace(cfg: &ArrayConfig) -> Trace {
    Microbench::read()
        .hot_clusters(2)
        .requests(REQUESTS)
        .gap_ns(overload_gap_ns(cfg, 2))
        .build(cfg, SEED)
}

/// Runs one mode and hard-fails the bench if the FTL metadata lost or
/// duplicated a page along the way.
fn run_checked(cfg: ArrayConfig, mode: ManagementMode, trace: &Trace) -> RunReport {
    let (report, integrity) = Array::new(cfg, mode).run_verified(trace);
    integrity.expect("FTL integrity violated under fault injection");
    report
}

fn flash_sweep(trace: &Trace) {
    let mut rows = Vec::new();
    for (label, transient, hard) in [
        ("none", 0.0, 0.0),
        ("light", 0.005, 0.0002),
        ("moderate", 0.02, 0.001),
        ("heavy", 0.05, 0.004),
    ] {
        let mut cfg = bench_config();
        cfg.faults = FaultConfig {
            flash: FlashFaultProfile {
                read_transient_prob: transient,
                prog_fail_prob: hard,
                erase_fail_prob: hard,
            },
            seed: SEED,
            ..FaultConfig::default()
        };
        let base = run_checked(cfg, ManagementMode::NonAutonomic, trace);
        let aaa = run_checked(cfg, ManagementMode::Autonomic, trace);
        let fs = aaa.fault_stats();
        rows.push(vec![
            label.to_string(),
            format!("{:.0}K", base.iops() / 1e3),
            format!("{:.0}K", aaa.iops() / 1e3),
            f1(base.mean_latency_us()),
            f1(aaa.mean_latency_us()),
            fs.transient_read_faults.to_string(),
            fs.blocks_retired_by_fault.to_string(),
            fs.migration_rollbacks.to_string(),
        ]);
    }
    print_table(
        "NAND fault sweep: ECC retries + grown bad blocks (read-heavy, 2 hot clusters)",
        &[
            "Fault rate",
            "Base IOPS",
            "AAA IOPS",
            "Base lat us",
            "AAA lat us",
            "ECC retries",
            "Bad blocks",
            "Mig rollbacks",
        ],
        &rows,
    );
}

fn module_events(trace: &Trace) {
    // Fire mid-run, on a FIMM of hot cluster 0.
    let mid_ns = overload_gap_ns(&bench_config(), 2) * (REQUESTS as u64 / 2);
    let mut rows = Vec::new();
    for (label, kind) in [
        ("healthy", None),
        ("slowdown x4", Some(FimmFaultKind::Slowdown(4))),
        ("dead", Some(FimmFaultKind::Dead)),
    ] {
        let mut cfg = bench_config();
        if let Some(kind) = kind {
            cfg.faults = FaultConfig::default().with_fimm_event(FimmFaultEvent {
                cluster: 0,
                fimm: 0,
                at_ns: mid_ns,
                kind,
            });
        }
        let base = run_checked(cfg, ManagementMode::NonAutonomic, trace);
        let aaa = run_checked(cfg, ManagementMode::Autonomic, trace);
        let fs = aaa.fault_stats();
        rows.push(vec![
            label.to_string(),
            f1(base.mean_latency_us()),
            f1(aaa.mean_latency_us()),
            f2(aaa.mean_latency_us() / base.mean_latency_us().max(1e-9)),
            fs.degraded_reads.to_string(),
            aaa.autonomic_stats().laggard_detections.to_string(),
            aaa.autonomic_stats().pages_reshaped.to_string(),
        ]);
    }
    print_table(
        "Whole-module events at t=midpoint on the hot cluster",
        &[
            "Event",
            "Base lat us",
            "AAA lat us",
            "AAA/Base",
            "Degraded reads",
            "Laggards",
            "Pages reshaped",
        ],
        &rows,
    );
}

fn pcie_sweep(trace: &Trace) {
    let mut rows = Vec::new();
    for (label, prob) in [("none", 0.0), ("1e-3", 0.001), ("1e-2", 0.01)] {
        let mut cfg = bench_config();
        cfg.faults.pcie = PcieFaultProfile {
            corrupt_prob: prob,
            replay_ns: 700,
        };
        cfg.faults.seed = SEED;
        let aaa = run_checked(cfg, ManagementMode::Autonomic, trace);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}K", aaa.iops() / 1e3),
            f1(aaa.mean_latency_us()),
            f1(aaa.latency_percentile_us(99.0)),
            aaa.fault_stats().tlp_replays.to_string(),
        ]);
    }
    print_table(
        "PCI-E TLP corruption sweep (replay = 700 ns per corrupted packet)",
        &[
            "Corrupt prob",
            "IOPS",
            "Mean lat us",
            "p99 lat us",
            "TLP replays",
        ],
        &rows,
    );
}

fn main() {
    let cfg = bench_config();
    let trace = hot_trace(&cfg);
    flash_sweep(&trace);
    println!();
    module_events(&trace);
    println!();
    pcie_sweep(&trace);
    println!(
        "\nall runs seeded (seed {SEED:#x}) and integrity-checked: the same binary\n\
         reproduces this output byte for byte."
    );
}
