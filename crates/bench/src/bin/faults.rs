//! Fault-injection sweep: NAND faults, whole-module events, and PCI-E
//! TLP corruption under both management modes, with end-to-end FTL
//! integrity checks. Thin wrapper over the `faults` experiment spec;
//! `bench all` runs the same spec in parallel and persists
//! `results/faults.json`.

fn main() {
    triplea_bench::experiments::run_and_print("faults");
}
