//! Table 2: absolute performance metrics of the 4×16 **non-autonomic**
//! all-flash array under the eleven enterprise workloads.
//!
//! Columns mirror the paper: average latency, IOPS, average
//! link-contention time, average storage-contention time, and average
//! queue-stall time.

use triplea_bench::{bench_config, enterprise_trace, f1, print_table};
use triplea_core::{Array, ManagementMode};
use triplea_workloads::WorkloadProfile;

fn main() {
    let cfg = bench_config();
    let mut rows = Vec::new();
    for profile in WorkloadProfile::enterprise() {
        let trace = enterprise_trace(profile, &cfg, 0xBEEF);
        let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
        rows.push(vec![
            profile.name.to_string(),
            f1(report.mean_latency_us()),
            format!("{:.0}K", report.iops() / 1_000.0),
            f1(report.avg_link_contention_us()),
            f1(report.avg_storage_contention_us()),
            f1(report.avg_queue_stall_us()),
        ]);
    }
    print_table(
        "Table 2: non-autonomic 4x16 all-flash array, absolute metrics",
        &[
            "Workload",
            "Avg latency (us)",
            "IOPS",
            "Avg link-cont. (us)",
            "Avg storage-cont. (us)",
            "Avg queue stall (us)",
        ],
        &rows,
    );
    println!(
        "\npaper shape: ms-scale latencies on hot-clustered workloads; \
         link contention dominating storage contention for read-heavy \
         workloads; cfs/web (no hot clusters) far below the rest."
    );
}
