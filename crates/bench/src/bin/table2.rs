//! Table 2: absolute metrics of the non-autonomic 4×16 array under the
//! enterprise workloads. Thin wrapper over the `table2` experiment
//! spec; `bench all` runs the same spec in parallel and persists
//! `results/table2.json`.

fn main() {
    triplea_bench::experiments::run_and_print("table2");
}
