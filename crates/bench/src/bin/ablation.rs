//! Ablation studies of Triple-A's design knobs (migration extent,
//! laggard strategy, hot-bus gate, mapping cache, wear awareness, RC
//! queue). Thin wrapper over the `ablation` experiment spec; `bench
//! all` runs the same spec in parallel and persists
//! `results/ablation.json`.

fn main() {
    triplea_bench::experiments::run_and_print("ablation");
}
