//! Ablation studies of Triple-A's design choices (beyond the paper's
//! own figures; DESIGN.md documents the knobs):
//!
//! 1. migration granularity (1-page straggler data vs larger extents);
//! 2. laggard-detection strategy (Eq. 3 latency monitoring vs queue
//!    examination vs both);
//! 3. hot-detection bus-utilization gate;
//! 4. DFTL-style mapping-cache size (vs the full relocated-DRAM map);
//! 5. wear-aware vs wear-blind migration-target tie-breaking.

use triplea_bench::{bench_config, f1, f2, overload_gap_ns, print_table, REQUESTS};
use triplea_core::{Array, ArrayConfig, LaggardStrategy, ManagementMode, RunReport};
use triplea_workloads::Microbench;

fn run(cfg: ArrayConfig) -> RunReport {
    let gap = overload_gap_ns(&cfg, 4);
    let trace = Microbench::read()
        .hot_clusters(4)
        .requests(REQUESTS)
        .gap_ns(gap)
        .build(&cfg, 0xAB1A);
    Array::new(cfg, ManagementMode::Autonomic).run(&trace)
}

fn row(label: &str, r: &RunReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.0}K", r.iops() / 1e3),
        f1(r.mean_latency_us()),
        r.autonomic_stats().pages_migrated.to_string(),
        r.autonomic_stats().pages_reshaped.to_string(),
        f2(r.migration_write_overhead()),
    ]
}

fn main() {
    let base_cfg = bench_config();
    let mut rows = Vec::new();

    for extent in [1u32, 4, 8, 16] {
        let mut cfg = base_cfg;
        cfg.autonomic.migration_extent_pages = extent;
        let r = run(cfg);
        rows.push(row(&format!("extent={extent}"), &r));
    }
    for (name, strat) in [
        ("laggard=latency", LaggardStrategy::LatencyMonitoring),
        ("laggard=queue", LaggardStrategy::QueueExamination),
        ("laggard=both", LaggardStrategy::Both),
    ] {
        let mut cfg = base_cfg;
        cfg.autonomic.laggard = strat;
        rows.push(row(name, &run(cfg)));
    }
    for thresh in [0.5f64, 0.7, 0.9] {
        let mut cfg = base_cfg;
        cfg.autonomic.hot_bus_threshold = thresh;
        rows.push(row(&format!("hot_bus={thresh}"), &run(cfg)));
    }
    for pages in [0usize, 256, 4_096] {
        let mut cfg = base_cfg;
        cfg.mapping_cache_pages = pages;
        let label = if pages == 0 {
            "map=full-DRAM".to_string()
        } else {
            format!("map=dftl-{pages}")
        };
        rows.push(row(&label, &run(cfg)));
    }
    for wear_aware in [true, false] {
        let mut cfg = base_cfg;
        cfg.autonomic.wear_aware = wear_aware;
        rows.push(row(&format!("wear_aware={wear_aware}"), &run(cfg)));
    }
    // The paper's RC-queue range (650-1000 entries) bounds outstanding
    // I/O array-wide.
    for rc in [650usize, 800, 1_000] {
        let mut cfg = base_cfg;
        cfg.pcie.rc_queue = rc;
        rows.push(row(&format!("rc_queue={rc}"), &run(cfg)));
    }

    print_table(
        "Ablation: Triple-A design knobs (read micro-benchmark, 4 hot clusters)",
        &[
            "Variant",
            "IOPS",
            "Mean latency (us)",
            "Pages migrated",
            "Pages reshaped",
            "Write overhead",
        ],
        &rows,
    );
}
