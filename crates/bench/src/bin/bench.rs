//! The suite driver: runs experiment specs through the parallel
//! `Runner` and persists their
//! artifacts (`results/<name>.json` + `results/<name>.txt`).
//!
//! ```text
//! bench all [OPTIONS]          run every experiment
//! bench <name>... [OPTIONS]    run a subset (see `bench list`)
//! bench list                   print registered experiment names
//! bench scenario list          print the scenario catalog
//! bench scenario <name|all>    run catalog scenarios only [OPTIONS]
//! bench perf [OPTIONS]         simulator-throughput suite (events/sec,
//!                              wall-clock, allocations; single thread)
//!
//! OPTIONS:
//!   --scale <full|quick>    traffic per run           [default full]
//!   --threads <N>           harness worker threads    [default: RAYON_NUM_THREADS or all cores]
//!   --workers <N>           sharded event-loop workers per simulation
//!                           (0 = classic serial engine)  [default 0]
//!   --out <DIR>             artifact directory        [default results]
//!   --compare-serial        after the parallel run, rerun on 1 thread
//!                           and report the wall-clock ratio
//! ```
//!
//! Artifacts are byte-deterministic: the same spec and scale produce
//! identical `results/*.json` at any thread count (`tests/golden.rs`
//! pins this down). `--threads` parallelizes *across* sweep points;
//! `--workers` parallelizes *inside* one simulation via the
//! conservative sharded executor, whose results are invariant to the
//! worker count (CI byte-compares `--workers 1` vs `--workers 8`).

use std::path::PathBuf;
use std::process::exit;

use triplea_bench::experiments;
use triplea_bench::harness::{run_suite_timed, write_artifacts, Runner, Scale};

/// Counting allocator so `bench perf` can report heap traffic per
/// profile; two relaxed increments per allocation, negligible for the
/// regular experiment suite.
#[global_allocator]
static ALLOC: triplea_alloc_counter::CountingAllocator =
    triplea_alloc_counter::CountingAllocator;

struct Opts {
    targets: Vec<String>,
    scale: Scale,
    threads: usize,
    workers: u32,
    out: PathBuf,
    compare_serial: bool,
}

fn usage_and_exit(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nusage: bench <all|list|NAME...> [--scale full|quick] [--threads N] [--workers N] [--out DIR] [--compare-serial]");
    exit(2)
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit("missing subcommand");
    }
    let mut o = Opts {
        targets: Vec::new(),
        scale: Scale::full(),
        threads: 0,
        workers: 0,
        out: PathBuf::from("results"),
        compare_serial: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| usage_and_exit("missing value for flag"))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = value(&mut i);
                o.scale = Scale::by_name(&v)
                    .unwrap_or_else(|| usage_and_exit("--scale must be full or quick"));
            }
            "--threads" => {
                o.threads = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad --threads"));
            }
            "--workers" => {
                o.workers = value(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("bad --workers"));
            }
            "--out" => o.out = PathBuf::from(value(&mut i)),
            "--compare-serial" => o.compare_serial = true,
            flag if flag.starts_with('-') => usage_and_exit(&format!("unknown flag {flag}")),
            name => o.targets.push(name.to_string()),
        }
        i += 1;
    }
    if o.targets.is_empty() {
        usage_and_exit("missing subcommand");
    }
    o
}

/// The `perf` subcommand: runs the four profiles serially on the main
/// thread (so wall-clock and allocation deltas are attributable), then
/// the sharded-scaling worker sweeps, and writes `results/perf.json` +
/// `results/perf.txt`.
fn run_perf(o: &Opts) {
    use triplea_bench::experiments::perf;

    let runs = perf::run_suite(o.scale);
    let scaling = perf::run_scaling(o.scale);
    let federation = perf::run_federation_scaling(o.scale);
    let json = serde_json::to_string_pretty(&perf::to_json(o.scale, &runs, &scaling, &federation))
        .expect("perf report serializes");
    let txt = perf::render_text(o.scale, &runs, &scaling, &federation);
    std::fs::create_dir_all(&o.out)
        .unwrap_or_else(|e| usage_and_exit(&format!("cannot create {}: {e}", o.out.display())));
    let json_path = o.out.join("perf.json");
    let txt_path = o.out.join("perf.txt");
    std::fs::write(&json_path, json.as_bytes())
        .and_then(|()| std::fs::write(&txt_path, txt.as_bytes()))
        .unwrap_or_else(|e| usage_and_exit(&format!("cannot write artifacts: {e}")));
    print!("{txt}");
    println!(
        "perf         {:>3} profiles -> {} + {}",
        runs.len(),
        json_path.display(),
        txt_path.display()
    );
}

fn main() {
    let mut o = parse_opts();
    if o.workers > 0 {
        triplea_bench::set_worker_override(o.workers);
    }
    // `bench scenario ...` scopes the run to the catalog: `list` prints
    // it, `all` (or no further name) selects every scenario, and bare
    // names are resolved with the `scenario_` prefix implied.
    if o.targets.first().map(String::as_str) == Some("scenario") {
        o.targets.remove(0);
        let names = experiments::scenario::NAMES;
        if o.targets == ["list"] {
            for exp in experiments::scenario::catalog(Scale::quick()) {
                println!("{:<28} {} ({} points)", exp.name, exp.title, exp.len());
            }
            return;
        }
        if o.targets.is_empty() || o.targets == ["all"] {
            o.targets = names.iter().map(|n| n.to_string()).collect();
        } else {
            o.targets = o
                .targets
                .iter()
                .map(|t| {
                    let full = format!("scenario_{t}");
                    if names.contains(&t.as_str()) {
                        t.clone()
                    } else if names.contains(&full.as_str()) {
                        full
                    } else {
                        usage_and_exit(&format!(
                            "unknown scenario {t:?}; run `bench scenario list`"
                        ))
                    }
                })
                .collect();
        }
    }
    if o.targets == ["list"] {
        for exp in experiments::all(Scale::quick()) {
            println!("{:<12} {} ({} points)", exp.name, exp.title, exp.len());
        }
        println!("{:<12} simulator-throughput suite (own subcommand)", "perf");
        return;
    }
    if o.targets == ["perf"] {
        run_perf(&o);
        return;
    }

    let suite = experiments::all(o.scale);
    let selected: Vec<&_> = if o.targets == ["all"] {
        suite.iter().collect()
    } else {
        // Preserve registry order (which golden snapshots and `all` use)
        // regardless of the order names were given on the command line.
        for name in &o.targets {
            if !suite.iter().any(|e| e.name == name) {
                usage_and_exit(&format!("unknown experiment {name:?}; run `bench list`"));
            }
        }
        suite
            .iter()
            .filter(|e| o.targets.iter().any(|n| n == e.name))
            .collect()
    };

    let runner = Runner::new().threads(o.threads);
    let (results, timing) = run_suite_timed(&runner, &selected, o.scale);
    for (exp, result) in selected.iter().zip(&results) {
        let paths = write_artifacts(exp, result, &o.out)
            .unwrap_or_else(|e| usage_and_exit(&format!("cannot write artifacts: {e}")));
        let shown: Vec<String> = paths.iter().map(|p| p.display().to_string()).collect();
        println!(
            "{:<12} {:>3} points -> {}",
            exp.name,
            exp.len(),
            shown.join(" + ")
        );
    }
    println!(
        "\n{} experiments / {} points in {:.1}s on {} thread(s)",
        results.len(),
        timing.points,
        timing.secs,
        timing.threads
    );

    if o.compare_serial {
        let serial = Runner::new().threads(1);
        let (serial_results, serial_timing) = run_suite_timed(&serial, &selected, o.scale);
        assert_eq!(
            serial_results, results,
            "serial and parallel runs must produce identical results"
        );
        println!(
            "serial rerun: {:.1}s on 1 thread -> speedup {:.2}x (results byte-identical)",
            serial_timing.secs,
            serial_timing.secs / timing.secs.max(1e-9)
        );
    }
}
