//! End-to-end worker plumbing: the `bench --workers N` override routes
//! the baseline experiment configuration onto the conservative sharded
//! executor, and the simulated outcome is invariant to `N`.
//!
//! Runs as its own test binary because the override is process-global
//! state — here nothing else touches it, so setting and clearing it is
//! race-free. CI additionally byte-compares full `bench all --workers 1`
//! vs `--workers 8` artifact trees through the real CLI.

use triplea_bench::{bench_config, overload_gap_ns, set_worker_override, worker_override};
use triplea_core::{Array, ManagementMode, RunReport};
use triplea_workloads::Microbench;

fn run_baseline() -> RunReport {
    let cfg = bench_config();
    let trace = Microbench::read()
        .hot_clusters(4)
        .requests(2_000)
        .gap_ns(overload_gap_ns(&cfg, 4))
        .build(&cfg, 7);
    Array::new(cfg, ManagementMode::Autonomic).run(&trace)
}

#[test]
fn override_routes_workers_and_changes_no_simulated_outcome() {
    assert_eq!(worker_override(), None, "override starts unset");
    assert_eq!(bench_config().workers, None);

    set_worker_override(1);
    assert_eq!(bench_config().workers, Some(1));
    let one = run_baseline();

    set_worker_override(8);
    assert_eq!(worker_override(), Some(8));
    let eight = run_baseline();

    assert_eq!(
        one, eight,
        "sharded baseline run must be invariant to the worker count"
    );
    assert_eq!(one.completed(), 2_000);

    set_worker_override(0);
    assert_eq!(worker_override(), None, "0 restores the serial default");
    assert_eq!(bench_config().workers, None);
}
