//! Golden-snapshot regression suite.
//!
//! Runs every experiment spec at the quick scale and byte-compares the
//! `results/*.json` artifacts against the snapshots under
//! `tests/golden/`. Because the runner collects results in spec order,
//! the same spec must produce identical bytes at any thread count and
//! under any task completion order — both properties are asserted here.
//!
//! To regenerate the snapshots after an intentional simulator or spec
//! change:
//!
//! ```text
//! TRIPLEA_BLESS=1 cargo test -p triplea-bench --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use triplea_bench::harness::{
    bless_requested, compare_snapshot, obj, uint, ExecOrder, Experiment, Runner, Scale,
};
use triplea_bench::{experiments, overload_gap_ns};
use triplea_core::{Array, ManagementMode};
use triplea_workloads::Microbench;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs the full quick-scale suite; returns `(name, json, txt)` per
/// experiment.
fn run_suite(threads: usize, order: ExecOrder) -> Vec<(String, String, String)> {
    let suite = experiments::all(Scale::quick());
    let refs: Vec<&Experiment> = suite.iter().collect();
    let results = Runner::new()
        .threads(threads)
        .order(order)
        .run_suite(&refs, Scale::quick());
    suite
        .iter()
        .zip(&results)
        .map(|(e, r)| (e.name.to_string(), r.to_json(), e.render(r)))
        .collect()
}

/// The tentpole property, end to end on the real specs: one serial run
/// and one 8-thread run with a scrambled start order must produce
/// byte-identical artifacts, and those bytes must match the checked-in
/// snapshots (or regenerate them under `TRIPLEA_BLESS=1`).
#[test]
fn suite_matches_golden_snapshots_at_any_thread_count() {
    let serial = run_suite(1, ExecOrder::SpecOrder);
    let parallel = run_suite(8, ExecOrder::Scrambled(0xBEEF));
    for ((name_s, json_s, txt_s), (name_p, json_p, txt_p)) in serial.iter().zip(&parallel) {
        assert_eq!(name_s, name_p);
        assert_eq!(json_s, json_p, "{name_s}: 1-thread vs 8-thread JSON drift");
        assert_eq!(txt_s, txt_p, "{name_s}: 1-thread vs 8-thread text drift");
    }

    if bless_requested() {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        for (name, json, _) in &serial {
            fs::write(golden_dir().join(format!("{name}.json")), json)
                .expect("write golden snapshot");
        }
        eprintln!("blessed {} golden snapshots", serial.len());
        return;
    }

    let mut failures = Vec::new();
    for (name, json, _) in &serial {
        let path = golden_dir().join(format!("{name}.json"));
        let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden snapshot {}; run TRIPLEA_BLESS=1 cargo test -p \
                 triplea-bench --test golden to create it",
                path.display()
            )
        });
        if let Err(msg) = compare_snapshot(name, &expected, json) {
            failures.push(msg);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Differential determinism for the scenario catalog specifically: each
/// catalog scenario, run alone at 1 thread in spec order and at 8
/// threads with a scrambled start order, must produce byte-identical
/// artifacts that also match the checked-in golden snapshot. This is
/// the per-scenario version of the suite-wide test above — it fails
/// with the scenario's name, and it keeps holding even if a scenario is
/// later dropped from `experiments::all`.
#[test]
fn every_catalog_scenario_is_thread_count_invariant_and_golden() {
    let catalog = experiments::scenario::catalog(Scale::quick());
    assert_eq!(
        catalog.iter().map(|e| e.name).collect::<Vec<_>>(),
        experiments::scenario::NAMES,
        "catalog order must match the published NAMES list"
    );
    for exp in &catalog {
        let serial = Runner::new()
            .threads(1)
            .run(exp, Scale::quick())
            .to_json();
        for scramble in [0xBEEFu64, 0x5CE_A210] {
            let parallel = Runner::new()
                .threads(8)
                .order(ExecOrder::Scrambled(scramble))
                .run(exp, Scale::quick())
                .to_json();
            assert_eq!(
                serial, parallel,
                "{}: 1-thread vs 8-thread (scramble {scramble:#x}) artifact drift",
                exp.name
            );
        }
        if bless_requested() {
            continue; // the suite-wide test owns (re)writing snapshots
        }
        let path = golden_dir().join(format!("{}.json", exp.name));
        let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden snapshot {}; run TRIPLEA_BLESS=1 cargo test -p \
                 triplea-bench --test golden to create it",
                path.display()
            )
        });
        if let Err(msg) = compare_snapshot(exp.name, &expected, &serial) {
            panic!("{msg}");
        }
    }
}

/// A deliberately perturbed configuration must fail the snapshot
/// comparison with a readable diff naming the first divergent line.
#[test]
fn perturbed_config_fails_snapshot_with_readable_diff() {
    fn micro_artifact(rc_queue: usize) -> String {
        let mut e = Experiment::new("micro", "RC-queue micro check");
        e.point("hot=1", move |ctx| {
            let cfg = triplea_bench::bench_config_with(|c| c.pcie.rc_queue = rc_queue);
            let trace = Microbench::read()
                .hot_clusters(1)
                .requests(Scale::quick().requests)
                .gap_ns(overload_gap_ns(&cfg, 1))
                .build(&cfg, ctx.base_seed);
            let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
            obj([
                ("rc_queue", uint(rc_queue as u64)),
                ("completed", uint(report.completed())),
                ("events", uint(report.events_processed())),
            ])
        });
        Runner::new().threads(1).run(&e, Scale::quick()).to_json()
    }

    let golden = micro_artifact(800);
    let drifted = micro_artifact(650);
    assert!(compare_snapshot("micro", &golden, &golden).is_ok());

    let err = compare_snapshot("micro", &golden, &drifted).unwrap_err();
    assert!(
        err.contains("golden snapshot mismatch for \"micro\""),
        "missing header: {err}"
    );
    assert!(err.contains("first difference at line"), "missing line number: {err}");
    assert!(
        err.contains("\n   - ") && err.contains("\n   + "),
        "missing -/+ context lines: {err}"
    );
    assert!(err.contains("- \"seed\"") || err.contains("rc_queue"), "diff context should show the divergent value: {err}");
    assert!(err.contains("TRIPLEA_BLESS=1"), "missing bless hint: {err}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Satellite property: runner output is a pure function of the
    /// spec — invariant under worker-thread count and task completion
    /// (start) order.
    #[test]
    fn runner_output_invariant_under_threads_and_order(
        threads in 1usize..9,
        scramble in 0u64..u64::MAX,
    ) {
        fn spec() -> Experiment {
            let mut e = Experiment::new("prop", "order/thread invariance");
            for i in 0..12u64 {
                e.point(format!("p{i}"), move |ctx| {
                    // Unequal work per point, so completion order genuinely
                    // differs from spec order on multiple threads.
                    let mut acc = ctx.seed;
                    for _ in 0..(i * 1_000) {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(ctx.base_seed);
                    }
                    obj([("i", uint(i)), ("acc", uint(acc))])
                });
            }
            e
        }
        let reference = Runner::new().threads(1).run(&spec(), Scale::quick());
        let probe = Runner::new()
            .threads(threads)
            .order(ExecOrder::Scrambled(scramble))
            .run(&spec(), Scale::quick());
        prop_assert_eq!(&probe, &reference);
        prop_assert_eq!(probe.to_json(), reference.to_json());
    }
}
