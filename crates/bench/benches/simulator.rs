//! Criterion micro-benchmarks of the simulator's hot paths, plus
//! scaled-down end-to-end runs of the two management modes.
//!
//! The table/figure regenerators live in `src/bin/` (one binary per
//! artefact); these benches track the *performance of the simulator
//! itself* so regressions in the event loop or substrates are caught.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use triplea_core::{Array, ArrayConfig, ManagementMode};
use triplea_flash::{FlashCommand, FlashGeometry, FlashTiming, Package, PageAddr};
use triplea_ftl::{hal, ArrayShape, Ftl, HybridFtl, LogicalPage, MappingCache};
use triplea_sim::stats::Histogram;
use triplea_sim::trace::{SharedRecorder, TraceConfig, TraceEventKind, TracePort, TraceScope};
use triplea_sim::{BaselineHeapQueue, EventQueue, SimTime, SplitMix64};
use triplea_workloads::{Microbench, Zipfian};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(i * 37 % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    // The pre-overhaul global heap, raced on the same traffic so the
    // calendar queue's margin is visible in one report.
    c.bench_function("baseline_heap_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = BaselineHeapQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(i * 37 % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    // Simulation-shaped traffic: a sliding now-frontier with short
    // scheduling deltas, the pattern the bucket ring is built for.
    c.bench_function("event_queue_sliding_window_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut now = 0u64;
            let mut acc = 0u64;
            for round in 0..10u64 {
                for i in 0..1_000u64 {
                    q.push(SimTime::from_nanos(now + (i * 131) % 25_000), round * 1_000 + i);
                }
                for _ in 0..1_000 {
                    let (t, v) = q.pop().expect("pushed above");
                    now = t.as_nanos();
                    acc = acc.wrapping_add(v);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_trace_emit(c: &mut Criterion) {
    // The disabled path every untraced run takes at every emit site:
    // must stay at one branch, payload closures never built.
    c.bench_function("trace_emit_disabled_10k", |b| {
        let port = TracePort::off();
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                port.emit(|| {
                    acc = acc.wrapping_add(1);
                    TraceEventKind::MapMiss { lpn: i }
                });
            }
            black_box(acc)
        })
    });
    c.bench_function("trace_emit_enabled_10k", |b| {
        let rec = SharedRecorder::new(TraceConfig::all());
        let port = TracePort::attached(rec, TraceScope::fimm(1, 2));
        b.iter(|| {
            for i in 0..10_000u64 {
                port.emit(|| TraceEventKind::MapMiss { lpn: i });
            }
            black_box(port.is_enabled())
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record_10k", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            for i in 0..10_000u64 {
                h.record(i * 997 % 5_000_000);
            }
            black_box(h.percentile(0.99))
        })
    });
}

fn bench_ftl(c: &mut Criterion) {
    let shape = ArrayShape::small_test();
    c.bench_function("ftl_locate_10k", |b| {
        let ftl = Ftl::new(shape);
        let total = shape.total_pages();
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc ^= ftl.locate(LogicalPage(i * 131 % total)).addr.page.block as u64;
            }
            black_box(acc)
        })
    });
    // Locate through live overrides: dense segments where writes
    // clustered, sparse entries where they scattered — the page-map
    // hybrid's two lookup paths, vs the home-mapped arithmetic above.
    c.bench_function("ftl_locate_remapped_10k", |b| {
        let mut ftl = Ftl::new(shape);
        let total = shape.total_pages();
        // A clustered run (dense segments) plus a scattered tail
        // (sparse entries).
        for i in 0..2_000u64 {
            ftl.write_alloc(LogicalPage(i % total), None).unwrap();
        }
        for i in 0..500u64 {
            ftl.write_alloc(LogicalPage((i * 8_191) % total), None).unwrap();
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc ^= ftl.locate(LogicalPage(i * 131 % total)).addr.page.block as u64;
            }
            black_box(acc)
        })
    });
    c.bench_function("ftl_write_alloc_1k", |b| {
        b.iter_batched(
            || Ftl::new(shape),
            |mut ftl| {
                for i in 0..1_000u64 {
                    ftl.write_alloc(LogicalPage(i), None).unwrap();
                }
                black_box(ftl.stats().host_writes)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_flash(c: &mut Criterion) {
    c.bench_function("package_begin_op_1k_reads", |b| {
        b.iter_batched(
            || Package::new(FlashGeometry::default(), FlashTiming::default()),
            |mut pkg| {
                let mut t = SimTime::ZERO;
                for i in 0..1_000u32 {
                    let addr = PageAddr {
                        die: i % 2,
                        plane: i % 2,
                        block: (i % 64) * 2 + i % 2,
                        page: 0,
                    };
                    let op = pkg.begin_op(t, &FlashCommand::read(addr)).unwrap();
                    t = op.start;
                }
                black_box(t)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_hal(c: &mut Criterion) {
    use triplea_fimm::FimmAddr;
    let pages: Vec<FimmAddr> = (0..8)
        .map(|i| FimmAddr {
            package: i % 4,
            page: PageAddr {
                die: (i / 4) % 2,
                plane: i % 2,
                block: i,
                page: 0,
            },
        })
        .collect();
    c.bench_function("hal_compose_8_pages", |b| {
        b.iter(|| black_box(hal::compose(triplea_flash::OpKind::Read, black_box(&pages))))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let cfg = ArrayConfig::small_test().with_series(false);
    let trace = Microbench::read()
        .hot_clusters(2)
        .requests(2_000)
        .gap_ns(1_400)
        .build(&cfg, 42);
    let mut g = c.benchmark_group("end_to_end_2k_requests");
    g.sample_size(10);
    g.bench_function("non_autonomic", |b| {
        b.iter(|| {
            let r = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(&trace);
            black_box(r.completed())
        })
    });
    g.bench_function("triple_a", |b| {
        b.iter(|| {
            let r = Array::new(cfg.clone(), ManagementMode::Autonomic).run(&trace);
            black_box(r.completed())
        })
    });
    g.finish();
}

fn bench_new_components(c: &mut Criterion) {
    c.bench_function("zipfian_sample_10k", |b| {
        let z = Zipfian::new(1_000_000, 0.99);
        b.iter(|| {
            let mut rng = SplitMix64::new(11);
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            black_box(acc)
        })
    });
    c.bench_function("mapping_cache_access_10k", |b| {
        b.iter_batched(
            || MappingCache::new(256),
            |mut cache| {
                let mut rng = SplitMix64::new(12);
                let mut hits = 0u64;
                for _ in 0..10_000 {
                    if cache.access(rng.next_below(1_000_000)) {
                        hits += 1;
                    }
                }
                black_box(hits)
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("hybrid_ftl_write_10k", |b| {
        b.iter_batched(
            || HybridFtl::new(FlashGeometry::default(), 1, 16),
            |mut ftl| {
                for i in 0..10_000u64 {
                    ftl.write((i * 167) % 100_000);
                }
                black_box(ftl.stats().merges)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_trace_emit,
    bench_histogram,
    bench_ftl,
    bench_flash,
    bench_hal,
    bench_new_components,
    bench_end_to_end
);
criterion_main!(benches);
