//! Error type for flash package operations.

use crate::geometry::PageAddr;

/// Errors surfaced by the flash package model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlashError {
    /// The address does not exist in the package geometry, or its block
    /// parity disagrees with its plane.
    InvalidAddress(PageAddr),
    /// A command carried no targets.
    EmptyCommand,
    /// Multi-plane targets collide on a plane or span dies.
    PlaneConflict,
    /// Die-interleave targets collide on a die.
    DieConflict,
    /// The command's mode is inconsistent with its targets or kind.
    ModeMismatch,
    /// Program issued to a page that is not the next free page of its
    /// block (NAND requires in-order programming within a block).
    ProgramOrder(PageAddr),
    /// Program issued to an already-programmed page without an erase.
    OverwriteWithoutErase(PageAddr),
    /// The block has exceeded its P/E endurance and is retired.
    WornOut(PageAddr),
    /// A read attempt failed ECC decoding; the die time was consumed and
    /// the caller should re-issue the read (it will queue behind the
    /// failed attempt, which is exactly the ECC re-read penalty).
    ReadTransient(PageAddr),
    /// A program operation failed in hardware; the block is retired as a
    /// grown bad block and the caller must re-allocate elsewhere.
    ProgramFailed(PageAddr),
    /// An erase operation failed in hardware; the block is retired as a
    /// grown bad block and must not be recycled.
    EraseFailed(PageAddr),
    /// The whole module (FIMM) behind this package has failed; no
    /// operation can be serviced.
    ModuleFailed,
}

impl FlashError {
    /// `true` for faults that a retry of the same operation can clear
    /// (currently only ECC read failures).
    pub fn is_transient(&self) -> bool {
        matches!(self, FlashError::ReadTransient(_))
    }

    /// `true` for hardware failures — the target block or device is gone
    /// and the operation must be redirected, not retried in place.
    pub fn is_device_failure(&self) -> bool {
        matches!(
            self,
            FlashError::ProgramFailed(_)
                | FlashError::EraseFailed(_)
                | FlashError::WornOut(_)
                | FlashError::ModuleFailed
        )
    }
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::InvalidAddress(a) => write!(f, "invalid flash address {a}"),
            FlashError::EmptyCommand => write!(f, "flash command has no targets"),
            FlashError::PlaneConflict => write!(f, "multi-plane targets conflict"),
            FlashError::DieConflict => write!(f, "die-interleave targets conflict"),
            FlashError::ModeMismatch => write!(f, "command mode inconsistent with targets"),
            FlashError::ProgramOrder(a) => {
                write!(f, "out-of-order program within block at {a}")
            }
            FlashError::OverwriteWithoutErase(a) => {
                write!(f, "program to non-erased page at {a}")
            }
            FlashError::WornOut(a) => write!(f, "block at {a} exceeded endurance"),
            FlashError::ReadTransient(a) => {
                write!(f, "transient ECC read failure at {a}")
            }
            FlashError::ProgramFailed(a) => write!(f, "program failed at {a} (block retired)"),
            FlashError::EraseFailed(a) => write!(f, "erase failed at {a} (block retired)"),
            FlashError::ModuleFailed => write!(f, "module failed"),
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let addr = PageAddr::default();
        for e in [
            FlashError::InvalidAddress(addr),
            FlashError::EmptyCommand,
            FlashError::PlaneConflict,
            FlashError::DieConflict,
            FlashError::ModeMismatch,
            FlashError::ProgramOrder(addr),
            FlashError::OverwriteWithoutErase(addr),
            FlashError::WornOut(addr),
            FlashError::ReadTransient(addr),
            FlashError::ProgramFailed(addr),
            FlashError::EraseFailed(addr),
            FlashError::ModuleFailed,
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn classification_helpers() {
        let addr = PageAddr::default();
        assert!(FlashError::ReadTransient(addr).is_transient());
        assert!(!FlashError::ReadTransient(addr).is_device_failure());
        for hard in [
            FlashError::ProgramFailed(addr),
            FlashError::EraseFailed(addr),
            FlashError::WornOut(addr),
            FlashError::ModuleFailed,
        ] {
            assert!(hard.is_device_failure(), "{hard}");
            assert!(!hard.is_transient(), "{hard}");
        }
        // Caller mistakes are neither transient nor device failures.
        for bug in [
            FlashError::EmptyCommand,
            FlashError::ProgramOrder(addr),
            FlashError::OverwriteWithoutErase(addr),
        ] {
            assert!(!bug.is_transient() && !bug.is_device_failure(), "{bug}");
        }
    }

    #[test]
    fn error_trait_usable() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FlashError::EmptyCommand);
    }
}
