//! Error type for flash package operations.

use crate::geometry::PageAddr;

/// Errors surfaced by the flash package model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlashError {
    /// The address does not exist in the package geometry, or its block
    /// parity disagrees with its plane.
    InvalidAddress(PageAddr),
    /// A command carried no targets.
    EmptyCommand,
    /// Multi-plane targets collide on a plane or span dies.
    PlaneConflict,
    /// Die-interleave targets collide on a die.
    DieConflict,
    /// The command's mode is inconsistent with its targets or kind.
    ModeMismatch,
    /// Program issued to a page that is not the next free page of its
    /// block (NAND requires in-order programming within a block).
    ProgramOrder(PageAddr),
    /// Program issued to an already-programmed page without an erase.
    OverwriteWithoutErase(PageAddr),
    /// The block has exceeded its P/E endurance and is retired.
    WornOut(PageAddr),
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::InvalidAddress(a) => write!(f, "invalid flash address {a}"),
            FlashError::EmptyCommand => write!(f, "flash command has no targets"),
            FlashError::PlaneConflict => write!(f, "multi-plane targets conflict"),
            FlashError::DieConflict => write!(f, "die-interleave targets conflict"),
            FlashError::ModeMismatch => write!(f, "command mode inconsistent with targets"),
            FlashError::ProgramOrder(a) => {
                write!(f, "out-of-order program within block at {a}")
            }
            FlashError::OverwriteWithoutErase(a) => {
                write!(f, "program to non-erased page at {a}")
            }
            FlashError::WornOut(a) => write!(f, "block at {a} exceeded endurance"),
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let addr = PageAddr::default();
        for e in [
            FlashError::InvalidAddress(addr),
            FlashError::EmptyCommand,
            FlashError::PlaneConflict,
            FlashError::DieConflict,
            FlashError::ModeMismatch,
            FlashError::ProgramOrder(addr),
            FlashError::OverwriteWithoutErase(addr),
            FlashError::WornOut(addr),
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn error_trait_usable() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FlashError::EmptyCommand);
    }
}
