//! Deterministic NAND fault injection.
//!
//! A [`FlashFaultProfile`] gives per-operation failure probabilities; the
//! package draws from its own seeded [`SplitMix64`](triplea_sim::SplitMix64)
//! stream, so equal seeds and equal op sequences produce identical fault
//! patterns. With every probability at zero the package draws nothing and
//! behaves bit-for-bit like a fault-free build (pay for what you use).

/// Per-package probabilities of NAND faults, drawn once per command.
///
/// * Read faults are *transient*: the die time is consumed (the failed
///   sensing + ECC decode attempt) and the caller re-reads, queueing
///   behind the wasted attempt — the ECC re-read penalty.
/// * Program/erase faults are *hard*: the target block is retired as a
///   grown bad block and the caller must go elsewhere.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlashFaultProfile {
    /// Probability a read command fails ECC and must be re-issued.
    pub read_transient_prob: f64,
    /// Probability a program command hard-fails, retiring its block.
    pub prog_fail_prob: f64,
    /// Probability an erase command hard-fails, retiring its block.
    pub erase_fail_prob: f64,
}

impl FlashFaultProfile {
    /// `true` when every probability is zero: no RNG is consumed and
    /// operation timing is untouched.
    pub fn is_quiet(&self) -> bool {
        self.read_transient_prob <= 0.0 && self.prog_fail_prob <= 0.0 && self.erase_fail_prob <= 0.0
    }
}

/// Fault-event counters for one package.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackageFaultStats {
    /// Read commands that failed ECC and were surfaced for re-read.
    pub read_transients: u64,
    /// Program commands that hard-failed.
    pub prog_failures: u64,
    /// Erase commands that hard-failed.
    pub erase_failures: u64,
    /// Blocks retired as grown bad blocks by those hard failures.
    pub blocks_force_retired: u64,
}

impl PackageFaultStats {
    /// Folds another package's counters into this one.
    pub fn merge(&mut self, other: &PackageFaultStats) {
        self.read_transients += other.read_transients;
        self.prog_failures += other.prog_failures;
        self.erase_failures += other.erase_failures;
        self.blocks_force_retired += other.blocks_force_retired;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_quiet() {
        assert!(FlashFaultProfile::default().is_quiet());
        assert!(!FlashFaultProfile {
            read_transient_prob: 0.01,
            ..FlashFaultProfile::default()
        }
        .is_quiet());
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = PackageFaultStats {
            read_transients: 1,
            prog_failures: 2,
            erase_failures: 3,
            blocks_force_retired: 4,
        };
        let snapshot = a;
        a.merge(&snapshot);
        assert_eq!(a.read_transients, 2);
        assert_eq!(a.blocks_force_retired, 8);
    }
}
