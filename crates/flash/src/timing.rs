//! NAND array and ONFi interface timing parameters.

use triplea_sim::Nanos;

/// Timing of the ONFi NV-DDR2 interface (paper §3.3: 78-pin connector,
/// 400 MHz bus clock, 16 data pins per FIMM channel).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OnfiTiming {
    /// Interface clock in MHz (`f_inf` of the paper's Eq. 2).
    pub clock_mhz: u32,
    /// Number of data pins on the shared channel (`n_pins`).
    pub data_pins: u32,
    /// Double data rate: two transfers per clock when `true`.
    pub ddr: bool,
    /// Fixed command + address cycle overhead per operation.
    pub cmd_overhead: Nanos,
}

impl Default for OnfiTiming {
    fn default() -> Self {
        OnfiTiming {
            clock_mhz: 400,
            data_pins: 16,
            ddr: true,
            cmd_overhead: 100,
        }
    }
}

impl OnfiTiming {
    /// Channel bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> u64 {
        let transfers = self.clock_mhz as u64 * 1_000_000 * if self.ddr { 2 } else { 1 };
        transfers * self.data_pins as u64 / 8
    }

    /// Time to move `bytes` over the channel (`t_DMA` per page in the
    /// paper's Eq. 1 when `bytes` is one page).
    pub fn dma_nanos(&self, bytes: u64) -> Nanos {
        let bps = self.bytes_per_sec();
        (bytes as u128 * 1_000_000_000).div_ceil(bps as u128) as Nanos
    }
}

/// Latency parameters of the NAND array and embedded controller.
///
/// Defaults are SLC-class NAND (25 µs read, 250 µs program, 1.5 ms
/// erase) with a 1 µs controller/ECC pass per page (§2.2's embedded ECC
/// engine) — the paper's commercial comparables (TMS RamSan, Violin
/// 6000, §7) are SLC-era performance arrays. Use
/// [`FlashTiming::mlc`] for consumer-MLC timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlashTiming {
    /// Array read time per page (`t_R`); part of Eq. 1's `t_exe`.
    pub t_read: Nanos,
    /// Array program time per page (`t_PROG`).
    pub t_prog: Nanos,
    /// Block erase time (`t_BERS`).
    pub t_erase: Nanos,
    /// Embedded controller parse + ECC latency per page.
    pub t_ctrl: Nanos,
    /// MLC page pairing: in multi-level cells, the pages of a wordline
    /// pair split into a *fast* (LSB) and a *slow* (MSB) page; MSB
    /// programs take roughly `slow_page_factor`× longer. This intrinsic
    /// latency variation is what the paper's NANDFlashSim reference
    /// (ref. \[26\]) models; `0` disables it (SLC).
    pub slow_page_factor: u32,
    /// Interface timing of the attached channel.
    pub onfi: OnfiTiming,
}

impl Default for FlashTiming {
    fn default() -> Self {
        FlashTiming {
            t_read: 25_000,
            t_prog: 250_000,
            t_erase: 1_500_000,
            t_ctrl: 1_000,
            slow_page_factor: 0,
            onfi: OnfiTiming::default(),
        }
    }
}

impl FlashTiming {
    /// 2013-era consumer MLC timing: 40 µs read, 600 µs program, 3 ms
    /// erase.
    pub fn mlc() -> Self {
        FlashTiming {
            t_read: 40_000,
            t_prog: 600_000,
            t_erase: 3_000_000,
            slow_page_factor: 2,
            ..FlashTiming::default()
        }
    }

    /// Execution latency (`t_exe`) for one page of the given operation,
    /// including the controller/ECC pass.
    pub fn exe_nanos(&self, kind: crate::OpKind) -> Nanos {
        let array = match kind {
            crate::OpKind::Read => self.t_read,
            crate::OpKind::Program => self.t_prog,
            crate::OpKind::Erase => self.t_erase,
        };
        array + self.t_ctrl
    }

    /// `t_DMA` for one page of `page_size` bytes.
    pub fn dma_nanos(&self, page_size: u32) -> Nanos {
        self.onfi.dma_nanos(page_size as u64)
    }

    /// Program latency for a specific page index, accounting for MLC
    /// fast/slow page pairing (odd page indices map to slow MSB pages).
    pub fn prog_nanos_for_page(&self, page: u32) -> Nanos {
        if self.slow_page_factor > 1 && page % 2 == 1 {
            self.t_prog * self.slow_page_factor as u64 + self.t_ctrl
        } else {
            self.t_prog + self.t_ctrl
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    #[test]
    fn nvddr2_bandwidth() {
        let t = OnfiTiming::default();
        // 400 MHz DDR x 16 pins = 800 MT/s x 2 bytes = 1.6 GB/s
        assert_eq!(t.bytes_per_sec(), 1_600_000_000);
    }

    #[test]
    fn dma_of_4k_page() {
        let t = OnfiTiming::default();
        // 4096 B / 1.6 GB/s = 2.56 us
        assert_eq!(t.dma_nanos(4096), 2_560);
    }

    #[test]
    fn dma_rounds_up() {
        let t = OnfiTiming {
            clock_mhz: 1,
            data_pins: 8,
            ddr: false,
            cmd_overhead: 0,
        };
        // 1 MB/s: 3 bytes -> 3000ns exactly; 1 byte -> 1000ns
        assert_eq!(t.dma_nanos(3), 3_000);
        assert_eq!(t.dma_nanos(1), 1_000);
    }

    #[test]
    fn sdr_halves_bandwidth() {
        let ddr = OnfiTiming::default();
        let sdr = OnfiTiming { ddr: false, ..ddr };
        assert_eq!(sdr.bytes_per_sec() * 2, ddr.bytes_per_sec());
    }

    #[test]
    fn exe_includes_controller() {
        let t = FlashTiming::default();
        assert_eq!(t.exe_nanos(OpKind::Read), 26_000);
        assert_eq!(t.exe_nanos(OpKind::Program), 251_000);
        assert_eq!(t.exe_nanos(OpKind::Erase), 1_501_000);
    }

    #[test]
    fn mlc_profile_is_slower() {
        let slc = FlashTiming::default();
        let mlc = FlashTiming::mlc();
        assert!(mlc.t_read > slc.t_read);
        assert!(mlc.t_prog > slc.t_prog);
        assert_eq!(mlc.onfi, slc.onfi);
    }

    #[test]
    fn mlc_page_pairing_slows_odd_pages() {
        let slc = FlashTiming::default();
        assert_eq!(slc.prog_nanos_for_page(0), slc.prog_nanos_for_page(1));
        let mlc = FlashTiming::mlc();
        let fast = mlc.prog_nanos_for_page(0);
        let slow = mlc.prog_nanos_for_page(1);
        assert_eq!(fast, 601_000);
        assert_eq!(slow, 1_201_000);
    }
}
