//! The NAND flash command set (paper §2.2, "Parallelism and Commands").

use crate::error::FlashError;
use crate::geometry::{FlashGeometry, PageAddr};

/// The three NAND array operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Page read: array → data register.
    Read,
    /// Page program: data register → array.
    Program,
    /// Block erase.
    Erase,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OpKind::Read => "read",
            OpKind::Program => "program",
            OpKind::Erase => "erase",
        })
    }
}

/// How a multi-target command exploits package-internal parallelism.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CmdMode {
    /// One target, no special mode.
    #[default]
    Normal,
    /// Multi-plane: targets on *different planes* of the *same die*
    /// execute concurrently in the array.
    MultiPlane,
    /// Die-interleave: targets on *different dies* execute concurrently.
    DieInterleave,
    /// Cache mode: the cache register pipelines array time against
    /// channel transfer for sequential pages.
    Cache,
}

/// A fully-formed flash command as composed by the HAL.
///
/// Construct via [`FlashCommand::read`]/[`FlashCommand::program`]/
/// [`FlashCommand::erase`] or the multi-target `*_multi` constructors,
/// then validate against a geometry with [`FlashCommand::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlashCommand {
    /// Operation performed on every target.
    pub kind: OpKind,
    /// Target pages (for erase: any page in the doomed block).
    pub targets: Vec<PageAddr>,
    /// Parallelism mode; must be consistent with `targets`.
    pub mode: CmdMode,
}

impl FlashCommand {
    /// Single-page read.
    pub fn read(addr: PageAddr) -> Self {
        FlashCommand {
            kind: OpKind::Read,
            targets: vec![addr],
            mode: CmdMode::Normal,
        }
    }

    /// Single-page program.
    pub fn program(addr: PageAddr) -> Self {
        FlashCommand {
            kind: OpKind::Program,
            targets: vec![addr],
            mode: CmdMode::Normal,
        }
    }

    /// Block erase (the page component of `addr` is ignored).
    pub fn erase(addr: PageAddr) -> Self {
        FlashCommand {
            kind: OpKind::Erase,
            targets: vec![addr],
            mode: CmdMode::Normal,
        }
    }

    /// Multi-target command with an explicit mode.
    pub fn multi(kind: OpKind, targets: Vec<PageAddr>, mode: CmdMode) -> Self {
        FlashCommand {
            kind,
            targets,
            mode,
        }
    }

    /// Number of pages the command touches.
    pub fn page_count(&self) -> usize {
        self.targets.len()
    }

    /// Checks structural validity against `geom`:
    ///
    /// # Errors
    ///
    /// * [`FlashError::EmptyCommand`] — no targets.
    /// * [`FlashError::InvalidAddress`] — a target is out of range.
    /// * [`FlashError::PlaneConflict`] — multi-plane targets that share a
    ///   plane or span dies.
    /// * [`FlashError::DieConflict`] — die-interleave targets that share a
    ///   die.
    /// * [`FlashError::ModeMismatch`] — more than one target without a
    ///   parallel mode, or cache mode on an erase.
    pub fn validate(&self, geom: &FlashGeometry) -> Result<(), FlashError> {
        if self.targets.is_empty() {
            return Err(FlashError::EmptyCommand);
        }
        for &t in &self.targets {
            geom.check(t)?;
        }
        match self.mode {
            CmdMode::Normal => {
                if self.targets.len() > 1 {
                    return Err(FlashError::ModeMismatch);
                }
            }
            CmdMode::MultiPlane => {
                let die = self.targets[0].die;
                let mut seen = 0u64;
                for &t in &self.targets {
                    if t.die != die {
                        return Err(FlashError::PlaneConflict);
                    }
                    let bit = 1u64 << t.plane;
                    if seen & bit != 0 {
                        return Err(FlashError::PlaneConflict);
                    }
                    seen |= bit;
                }
            }
            CmdMode::DieInterleave => {
                let mut seen = 0u64;
                for &t in &self.targets {
                    let bit = 1u64 << t.die;
                    if seen & bit != 0 {
                        return Err(FlashError::DieConflict);
                    }
                    seen |= bit;
                }
            }
            CmdMode::Cache => {
                if self.kind == OpKind::Erase {
                    return Err(FlashError::ModeMismatch);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(die: u32, block: u32, page: u32) -> PageAddr {
        PageAddr {
            die,
            plane: block % 2,
            block,
            page,
        }
    }

    #[test]
    fn single_target_constructors() {
        let g = FlashGeometry::default();
        for cmd in [
            FlashCommand::read(a(0, 0, 0)),
            FlashCommand::program(a(1, 1, 5)),
            FlashCommand::erase(a(0, 7, 0)),
        ] {
            assert!(cmd.validate(&g).is_ok(), "{cmd:?}");
            assert_eq!(cmd.page_count(), 1);
        }
    }

    #[test]
    fn normal_mode_rejects_multi_target() {
        let g = FlashGeometry::default();
        let cmd = FlashCommand::multi(OpKind::Read, vec![a(0, 0, 0), a(0, 1, 0)], CmdMode::Normal);
        assert_eq!(cmd.validate(&g), Err(FlashError::ModeMismatch));
    }

    #[test]
    fn multiplane_requires_distinct_planes_same_die() {
        let g = FlashGeometry::default();
        let ok = FlashCommand::multi(
            OpKind::Read,
            vec![a(0, 0, 3), a(0, 1, 3)],
            CmdMode::MultiPlane,
        );
        assert!(ok.validate(&g).is_ok());

        let same_plane = FlashCommand::multi(
            OpKind::Read,
            vec![a(0, 0, 3), a(0, 2, 3)],
            CmdMode::MultiPlane,
        );
        assert_eq!(same_plane.validate(&g), Err(FlashError::PlaneConflict));

        let cross_die = FlashCommand::multi(
            OpKind::Read,
            vec![a(0, 0, 3), a(1, 1, 3)],
            CmdMode::MultiPlane,
        );
        assert_eq!(cross_die.validate(&g), Err(FlashError::PlaneConflict));
    }

    #[test]
    fn die_interleave_requires_distinct_dies() {
        let g = FlashGeometry::default();
        let ok = FlashCommand::multi(
            OpKind::Program,
            vec![a(0, 0, 0), a(1, 0, 0)],
            CmdMode::DieInterleave,
        );
        assert!(ok.validate(&g).is_ok());
        let dup = FlashCommand::multi(
            OpKind::Program,
            vec![a(0, 0, 0), a(0, 1, 0)],
            CmdMode::DieInterleave,
        );
        assert_eq!(dup.validate(&g), Err(FlashError::DieConflict));
    }

    #[test]
    fn cache_erase_is_nonsense() {
        let g = FlashGeometry::default();
        let cmd = FlashCommand::multi(OpKind::Erase, vec![a(0, 0, 0)], CmdMode::Cache);
        assert_eq!(cmd.validate(&g), Err(FlashError::ModeMismatch));
    }

    #[test]
    fn empty_command_rejected() {
        let g = FlashGeometry::default();
        let cmd = FlashCommand::multi(OpKind::Read, vec![], CmdMode::Normal);
        assert_eq!(cmd.validate(&g), Err(FlashError::EmptyCommand));
    }

    #[test]
    fn opkind_display() {
        assert_eq!(OpKind::Read.to_string(), "read");
        assert_eq!(OpKind::Program.to_string(), "program");
        assert_eq!(OpKind::Erase.to_string(), "erase");
    }
}
