//! The NAND package state machine: dies as busy-until servers, program
//! order enforcement, wear accounting.

use triplea_sim::FxHashMap;

use triplea_sim::trace::{TraceEventKind, TracePort};
use triplea_sim::{FifoResource, Nanos, SimTime, SplitMix64};

use crate::command::{CmdMode, FlashCommand, OpKind};
use crate::error::FlashError;
use crate::fault::{FlashFaultProfile, PackageFaultStats};
use crate::geometry::FlashGeometry;
use crate::timing::FlashTiming;
use crate::wear::{WearReport, WearTracker};

/// Timing outcome of a flash operation accepted by a package.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpTiming {
    /// When the earliest involved die begins the operation.
    pub start: SimTime,
    /// When the last involved die finishes (for reads: data sits in the
    /// data register, ready for channel transfer).
    pub end: SimTime,
    /// Longest time any involved die was awaited — the package-level
    /// component of the paper's *storage contention*.
    pub die_wait: Nanos,
}

/// Operation counters for one package.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackageStats {
    /// Page reads executed.
    pub reads: u64,
    /// Page programs executed.
    pub programs: u64,
    /// Block erases executed.
    pub erases: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct BlockState {
    next_page: u32,
}

/// One bare NAND flash package: dies, planes, registers, embedded
/// controller (paper §2.2). Pure metadata — no data bytes are stored.
///
/// The package enforces the NAND physical invariants that the FTL must
/// respect: in-order programming within a block, erase-before-rewrite,
/// and endurance-based block retirement.
#[derive(Clone, Debug)]
pub struct Package {
    geom: FlashGeometry,
    timing: FlashTiming,
    dies: Vec<FifoResource>,
    blocks: FxHashMap<u64, BlockState>,
    wear: WearTracker,
    stats: PackageStats,
    faults: FlashFaultProfile,
    fault_rng: SplitMix64,
    fault_stats: PackageFaultStats,
    /// Array-operation latency multiplier; 1 for a healthy package,
    /// raised by a FIMM slowdown fault to turn the module into a laggard.
    latency_scale: u32,
    trace: TracePort,
}

impl Package {
    /// Creates an idle, fully-erased package.
    pub fn new(geom: FlashGeometry, timing: FlashTiming) -> Self {
        Package {
            geom,
            timing,
            dies: (0..geom.dies).map(|_| FifoResource::new("die")).collect(),
            blocks: FxHashMap::default(),
            wear: WearTracker::new(geom.endurance),
            stats: PackageStats::default(),
            faults: FlashFaultProfile::default(),
            fault_rng: SplitMix64::new(0),
            fault_stats: PackageFaultStats::default(),
            latency_scale: 1,
            trace: TracePort::off(),
        }
    }

    /// Connects this package to an event recorder; accepted flash
    /// operations and injected NAND faults are reported through `port`.
    pub fn attach_trace(&mut self, port: TracePort) {
        self.trace = port;
    }

    /// Arms deterministic fault injection with the given probabilities
    /// and RNG seed. A quiet profile (all zeros) is free: no RNG draw and
    /// no timing change ever happens.
    pub fn set_faults(&mut self, profile: FlashFaultProfile, seed: u64) {
        self.faults = profile;
        self.fault_rng = SplitMix64::new(seed);
    }

    /// Multiplies every array-operation latency by `scale` (>= 1),
    /// modelling a degraded module. A scale of 1 restores full speed.
    pub fn set_latency_scale(&mut self, scale: u32) {
        self.latency_scale = scale.max(1);
    }

    /// The current array-operation latency multiplier.
    pub fn latency_scale(&self) -> u32 {
        self.latency_scale
    }

    /// Fault-event counters.
    pub fn fault_stats(&self) -> PackageFaultStats {
        self.fault_stats
    }

    /// Retired blocks (worn out and grown bad), ascending.
    pub fn retired_blocks(&self) -> Vec<u64> {
        self.wear.retired_blocks()
    }

    /// The package geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geom
    }

    /// The package timing parameters.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Operation counters.
    pub fn stats(&self) -> PackageStats {
        self.stats
    }

    /// Wear snapshot.
    pub fn wear_report(&self) -> WearReport {
        self.wear.report()
    }

    /// Instant the given die becomes free.
    pub fn die_free_at(&self, die: u32) -> SimTime {
        self.dies[die as usize].free_at()
    }

    /// `true` when every die is idle at `now` — the paper's Eq. 1 only
    /// classifies a cluster as hot *"when the target FIMM device is
    /// available to serve I/O requests"*.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.dies.iter().all(|d| d.is_free_at(now))
    }

    /// Validates and accepts a command, reserving die time.
    ///
    /// Returns the operation timing; the caller (the FIMM) layers channel
    /// transfer on top.
    ///
    /// # Errors
    ///
    /// Structural errors from [`FlashCommand::validate`], plus
    /// [`FlashError::ProgramOrder`], [`FlashError::OverwriteWithoutErase`]
    /// and [`FlashError::WornOut`] for violations of NAND physics.
    pub fn begin_op(&mut self, now: SimTime, cmd: &FlashCommand) -> Result<OpTiming, FlashError> {
        self.begin_op_impl(now, cmd, true)
    }

    /// Like [`Package::begin_op`] but immune to injected faults — models
    /// the last-resort read-retry/soft-decode path a controller falls
    /// back to once normal ECC retries are exhausted. NAND-physics errors
    /// (program order, wear-out, …) still apply.
    pub fn begin_op_recovery(
        &mut self,
        now: SimTime,
        cmd: &FlashCommand,
    ) -> Result<OpTiming, FlashError> {
        self.begin_op_impl(now, cmd, false)
    }

    fn begin_op_impl(
        &mut self,
        now: SimTime,
        cmd: &FlashCommand,
        allow_faults: bool,
    ) -> Result<OpTiming, FlashError> {
        cmd.validate(&self.geom)?;
        self.check_state(cmd)?;
        if allow_faults {
            if let Some(fault) = self.roll_fault(now, cmd) {
                return Err(fault);
            }
        }
        self.apply_state(cmd);

        let exe = self.exe_for(cmd);
        let timing = match cmd.mode {
            CmdMode::Normal | CmdMode::MultiPlane => {
                // Multi-plane targets run concurrently in the array: one
                // die reservation covers all planes.
                let die = cmd.targets[0].die as usize;
                let r = self.dies[die].reserve(now, exe);
                OpTiming {
                    start: r.start,
                    end: r.end,
                    die_wait: r.wait,
                }
            }
            CmdMode::Cache => {
                // Cache registers pipeline sequential pages on one die:
                // the die stays busy for n consecutive array operations
                // without waiting for channel transfers in between.
                let die = cmd.targets[0].die as usize;
                let n = cmd.targets.len() as u64;
                let r = self.dies[die].reserve(now, exe * n);
                OpTiming {
                    start: r.start,
                    end: r.end,
                    die_wait: r.wait,
                }
            }
            CmdMode::DieInterleave => {
                let mut start = SimTime::MAX;
                let mut end = SimTime::ZERO;
                let mut wait: Nanos = 0;
                for &t in &cmd.targets {
                    let r = self.dies[t.die as usize].reserve(now, exe);
                    start = start.min(r.start);
                    end = end.max(r.end);
                    wait = wait.max(r.wait);
                }
                OpTiming {
                    start,
                    end,
                    die_wait: wait,
                }
            }
        };

        match cmd.kind {
            OpKind::Read => self.stats.reads += cmd.targets.len() as u64,
            OpKind::Program => self.stats.programs += cmd.targets.len() as u64,
            OpKind::Erase => self.stats.erases += cmd.targets.len() as u64,
        }
        self.trace.emit_at(timing.start, || TraceEventKind::FlashStart {
            op: match cmd.kind {
                OpKind::Read => "read",
                OpKind::Program => "program",
                OpKind::Erase => "erase",
            },
            die: cmd.targets[0].die,
            die_wait_ns: timing.die_wait,
            dur_ns: timing.end - timing.start,
        });
        Ok(timing)
    }

    /// Array-operation time for one command, including the degraded-mode
    /// latency multiplier.
    fn exe_for(&self, cmd: &FlashCommand) -> Nanos {
        let base = match cmd.kind {
            // MLC fast/slow page pairing: the slowest target governs the
            // array operation.
            OpKind::Program => cmd
                .targets
                .iter()
                .map(|t| self.timing.prog_nanos_for_page(t.page))
                .max()
                .unwrap_or_else(|| self.timing.exe_nanos(cmd.kind)),
            _ => self.timing.exe_nanos(cmd.kind),
        };
        base * self.latency_scale as u64
    }

    /// Draws the fault decision for `cmd`. On a fault the involved die
    /// still burns a full array operation (the failed attempt), hard
    /// failures retire the first target's block, and the matching
    /// [`FlashError`] is returned for the caller to classify via
    /// [`FlashError::is_transient`] / [`FlashError::is_device_failure`].
    fn roll_fault(&mut self, now: SimTime, cmd: &FlashCommand) -> Option<FlashError> {
        let prob = match cmd.kind {
            OpKind::Read => self.faults.read_transient_prob,
            OpKind::Program => self.faults.prog_fail_prob,
            OpKind::Erase => self.faults.erase_fail_prob,
        };
        if prob <= 0.0 || !self.fault_rng.chance(prob) {
            return None;
        }
        let target = cmd.targets[0];
        let exe = self.exe_for(cmd);
        self.dies[target.die as usize].reserve(now, exe);
        self.trace.emit(|| TraceEventKind::FaultInjected {
            domain: "nand",
            detail: match cmd.kind {
                OpKind::Read => "read_transient",
                OpKind::Program => "prog_fail",
                OpKind::Erase => "erase_fail",
            },
        });
        match cmd.kind {
            OpKind::Read => {
                self.fault_stats.read_transients += 1;
                Some(FlashError::ReadTransient(target))
            }
            OpKind::Program => {
                self.fault_stats.prog_failures += 1;
                if self.wear.force_retire(self.geom.block_index(target)) {
                    self.fault_stats.blocks_force_retired += 1;
                }
                Some(FlashError::ProgramFailed(target))
            }
            OpKind::Erase => {
                self.fault_stats.erase_failures += 1;
                if self.wear.force_retire(self.geom.block_index(target)) {
                    self.fault_stats.blocks_force_retired += 1;
                }
                Some(FlashError::EraseFailed(target))
            }
        }
    }

    fn check_state(&self, cmd: &FlashCommand) -> Result<(), FlashError> {
        for &t in &cmd.targets {
            let bidx = self.geom.block_index(t);
            // Retirement stops program/erase; the stored charge is still
            // readable, which is what lets live data be copied off a
            // grown bad block.
            if cmd.kind != OpKind::Read && self.wear.is_retired(bidx) {
                return Err(FlashError::WornOut(t));
            }
            if cmd.kind == OpKind::Program {
                let next = self.blocks.get(&bidx).map_or(0, |b| b.next_page);
                if t.page < next {
                    return Err(FlashError::OverwriteWithoutErase(t));
                }
                if t.page > next {
                    return Err(FlashError::ProgramOrder(t));
                }
            }
        }
        Ok(())
    }

    fn apply_state(&mut self, cmd: &FlashCommand) {
        for &t in &cmd.targets {
            let bidx = self.geom.block_index(t);
            match cmd.kind {
                OpKind::Program => {
                    self.blocks.entry(bidx).or_default().next_page = t.page + 1;
                }
                OpKind::Erase => {
                    self.wear.record_erase(bidx);
                    self.blocks.entry(bidx).or_default().next_page = 0;
                }
                OpKind::Read => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PageAddr;

    fn pkg() -> Package {
        Package::new(FlashGeometry::default(), FlashTiming::default())
    }

    fn a(die: u32, block: u32, page: u32) -> PageAddr {
        PageAddr {
            die,
            plane: block % 2,
            block,
            page,
        }
    }

    #[test]
    fn read_reserves_die() {
        let mut p = pkg();
        let t1 = p
            .begin_op(SimTime::ZERO, &FlashCommand::read(a(0, 0, 0)))
            .unwrap();
        let t2 = p
            .begin_op(SimTime::ZERO, &FlashCommand::read(a(0, 0, 1)))
            .unwrap();
        assert_eq!(t1.die_wait, 0);
        assert_eq!(t2.die_wait, 26_000, "second read waits one t_exe");
        assert_eq!(t2.start, t1.end);
        assert_eq!(p.stats().reads, 2);
    }

    #[test]
    fn dies_are_independent() {
        let mut p = pkg();
        p.begin_op(SimTime::ZERO, &FlashCommand::read(a(0, 0, 0)))
            .unwrap();
        let other = p
            .begin_op(SimTime::ZERO, &FlashCommand::read(a(1, 0, 0)))
            .unwrap();
        assert_eq!(other.die_wait, 0);
    }

    #[test]
    fn die_interleave_parallelises() {
        let mut p = pkg();
        let cmd = FlashCommand::multi(
            OpKind::Read,
            vec![a(0, 0, 0), a(1, 0, 0)],
            CmdMode::DieInterleave,
        );
        let t = p.begin_op(SimTime::ZERO, &cmd).unwrap();
        assert_eq!(t.end - t.start, 26_000, "both dies in parallel");
    }

    #[test]
    fn multiplane_single_die_reservation() {
        let mut p = pkg();
        let cmd = FlashCommand::multi(
            OpKind::Read,
            vec![a(0, 0, 5), a(0, 1, 5)],
            CmdMode::MultiPlane,
        );
        let t = p.begin_op(SimTime::ZERO, &cmd).unwrap();
        assert_eq!(t.end - t.start, 26_000, "planes run concurrently");
        assert!(!p.is_idle_at(SimTime::from_nanos(1_000)));
        assert!(p.is_idle_at(SimTime::from_nanos(26_000)));
    }

    #[test]
    fn cache_mode_chains_array_ops() {
        let mut p = pkg();
        let cmd = FlashCommand::multi(
            OpKind::Read,
            vec![a(0, 0, 0), a(0, 0, 1), a(0, 0, 2)],
            CmdMode::Cache,
        );
        let t = p.begin_op(SimTime::ZERO, &cmd).unwrap();
        assert_eq!(t.end - t.start, 3 * 26_000);
    }

    #[test]
    fn program_order_enforced() {
        let mut p = pkg();
        assert!(p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0)))
            .is_ok());
        assert!(p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 1)))
            .is_ok());
        // skipping page 2 -> page 3 is out of order
        assert_eq!(
            p.begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 3))),
            Err(FlashError::ProgramOrder(a(0, 0, 3)))
        );
        // rewriting page 0 without erase is forbidden
        assert_eq!(
            p.begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0))),
            Err(FlashError::OverwriteWithoutErase(a(0, 0, 0)))
        );
    }

    #[test]
    fn erase_resets_program_pointer() {
        let mut p = pkg();
        p.begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0)))
            .unwrap();
        p.begin_op(SimTime::ZERO, &FlashCommand::erase(a(0, 0, 0)))
            .unwrap();
        assert!(p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0)))
            .is_ok());
        assert_eq!(p.wear_report().total_erases, 1);
    }

    #[test]
    fn worn_out_block_rejects_ops() {
        let geom = FlashGeometry {
            endurance: 1,
            ..FlashGeometry::default()
        };
        let mut p = Package::new(geom, FlashTiming::default());
        p.begin_op(SimTime::ZERO, &FlashCommand::erase(a(0, 0, 0)))
            .unwrap();
        assert_eq!(
            p.begin_op(SimTime::ZERO, &FlashCommand::erase(a(0, 0, 0))),
            Err(FlashError::WornOut(a(0, 0, 0)))
        );
        assert_eq!(
            p.begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0))),
            Err(FlashError::WornOut(a(0, 0, 0)))
        );
        // other blocks unaffected
        assert!(p
            .begin_op(SimTime::ZERO, &FlashCommand::read(a(0, 2, 0)))
            .is_ok());
    }

    #[test]
    fn mlc_pairing_affects_program_timing() {
        let mut p = Package::new(FlashGeometry::default(), FlashTiming::mlc());
        let fast = p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0)))
            .unwrap();
        let slow = p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 1)))
            .unwrap();
        assert_eq!(fast.end - fast.start, 601_000, "LSB page");
        assert_eq!(slow.end - slow.start, 1_201_000, "MSB page 2x slower");
    }

    #[test]
    fn read_transient_consumes_die_and_retry_queues_behind() {
        let mut p = pkg();
        p.set_faults(
            FlashFaultProfile {
                read_transient_prob: 1.0,
                ..FlashFaultProfile::default()
            },
            7,
        );
        let err = p
            .begin_op(SimTime::ZERO, &FlashCommand::read(a(0, 0, 0)))
            .unwrap_err();
        assert_eq!(err, FlashError::ReadTransient(a(0, 0, 0)));
        assert!(err.is_transient());
        assert!(!p.is_idle_at(SimTime::ZERO), "failed attempt burns the die");
        assert_eq!(p.stats().reads, 0, "failed read not counted as served");
        assert_eq!(p.fault_stats().read_transients, 1);
        // The recovery path is immune and queues behind the burned slot:
        // exactly the ECC re-read penalty.
        let t = p
            .begin_op_recovery(SimTime::ZERO, &FlashCommand::read(a(0, 0, 0)))
            .unwrap();
        assert_eq!(t.die_wait, 26_000);
        assert_eq!(p.stats().reads, 1);
    }

    #[test]
    fn program_failure_grows_bad_block() {
        let mut p = pkg();
        p.set_faults(
            FlashFaultProfile {
                prog_fail_prob: 1.0,
                ..FlashFaultProfile::default()
            },
            7,
        );
        let err = p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0)))
            .unwrap_err();
        assert_eq!(err, FlashError::ProgramFailed(a(0, 0, 0)));
        assert!(err.is_device_failure());
        assert_eq!(p.fault_stats().prog_failures, 1);
        assert_eq!(p.fault_stats().blocks_force_retired, 1);
        assert_eq!(p.retired_blocks(), vec![0]);
        assert_eq!(p.wear_report().retired_blocks, 1);
        // The grown bad block now rejects everything, faults or not.
        assert_eq!(
            p.begin_op_recovery(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0))),
            Err(FlashError::WornOut(a(0, 0, 0)))
        );
        // Other blocks are unaffected (and erase faults are off).
        assert!(p
            .begin_op(SimTime::ZERO, &FlashCommand::erase(a(0, 2, 0)))
            .is_ok());
    }

    #[test]
    fn fault_pattern_is_seed_deterministic() {
        let profile = FlashFaultProfile {
            read_transient_prob: 0.3,
            ..FlashFaultProfile::default()
        };
        let run = |seed: u64| -> Vec<bool> {
            let mut p = pkg();
            p.set_faults(profile, seed);
            (0..64u64)
                .map(|i| {
                    p.begin_op(
                        SimTime::from_us(i * 100),
                        &FlashCommand::read(a(0, 0, (i % 32) as u32)),
                    )
                    .is_err()
                })
                .collect()
        };
        assert_eq!(run(11), run(11), "equal seeds replay identically");
        assert_ne!(run(11), run(12), "different seeds differ");
        assert!(run(11).iter().any(|&f| f) && !run(11).iter().all(|&f| f));
    }

    #[test]
    fn latency_scale_slows_operations() {
        let mut p = pkg();
        p.set_latency_scale(4);
        let t = p
            .begin_op(SimTime::ZERO, &FlashCommand::read(a(0, 0, 0)))
            .unwrap();
        assert_eq!(t.end - t.start, 4 * 26_000);
        assert_eq!(p.latency_scale(), 4);
        p.set_latency_scale(0); // clamped back to healthy
        assert_eq!(p.latency_scale(), 1);
    }

    #[test]
    fn quiet_profile_changes_nothing() {
        let mut armed = pkg();
        armed.set_faults(FlashFaultProfile::default(), 99);
        let mut plain = pkg();
        for i in 0..32u32 {
            let cmd = FlashCommand::read(a(0, 0, i));
            assert_eq!(
                armed.begin_op(SimTime::ZERO, &cmd),
                plain.begin_op(SimTime::ZERO, &cmd)
            );
        }
        assert_eq!(armed.fault_stats(), PackageFaultStats::default());
    }

    #[test]
    fn invalid_command_leaves_state_untouched() {
        let mut p = pkg();
        let bad = FlashCommand::multi(
            OpKind::Program,
            vec![a(0, 0, 0), a(0, 2, 0)],
            CmdMode::MultiPlane,
        );
        assert!(p.begin_op(SimTime::ZERO, &bad).is_err());
        assert_eq!(p.stats().programs, 0);
        assert!(p.is_idle_at(SimTime::ZERO));
    }
}
