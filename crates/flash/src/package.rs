//! The NAND package state machine: dies as busy-until servers, program
//! order enforcement, wear accounting.

use std::collections::HashMap;

use triplea_sim::{FifoResource, Nanos, SimTime};

use crate::command::{CmdMode, FlashCommand, OpKind};
use crate::error::FlashError;
use crate::geometry::FlashGeometry;
use crate::timing::FlashTiming;
use crate::wear::{WearReport, WearTracker};

/// Timing outcome of a flash operation accepted by a package.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpTiming {
    /// When the earliest involved die begins the operation.
    pub start: SimTime,
    /// When the last involved die finishes (for reads: data sits in the
    /// data register, ready for channel transfer).
    pub end: SimTime,
    /// Longest time any involved die was awaited — the package-level
    /// component of the paper's *storage contention*.
    pub die_wait: Nanos,
}

/// Operation counters for one package.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackageStats {
    /// Page reads executed.
    pub reads: u64,
    /// Page programs executed.
    pub programs: u64,
    /// Block erases executed.
    pub erases: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct BlockState {
    next_page: u32,
}

/// One bare NAND flash package: dies, planes, registers, embedded
/// controller (paper §2.2). Pure metadata — no data bytes are stored.
///
/// The package enforces the NAND physical invariants that the FTL must
/// respect: in-order programming within a block, erase-before-rewrite,
/// and endurance-based block retirement.
#[derive(Clone, Debug)]
pub struct Package {
    geom: FlashGeometry,
    timing: FlashTiming,
    dies: Vec<FifoResource>,
    blocks: HashMap<u64, BlockState>,
    wear: WearTracker,
    stats: PackageStats,
}

impl Package {
    /// Creates an idle, fully-erased package.
    pub fn new(geom: FlashGeometry, timing: FlashTiming) -> Self {
        Package {
            geom,
            timing,
            dies: (0..geom.dies).map(|_| FifoResource::new("die")).collect(),
            blocks: HashMap::new(),
            wear: WearTracker::new(geom.endurance),
            stats: PackageStats::default(),
        }
    }

    /// The package geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geom
    }

    /// The package timing parameters.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Operation counters.
    pub fn stats(&self) -> PackageStats {
        self.stats
    }

    /// Wear snapshot.
    pub fn wear_report(&self) -> WearReport {
        self.wear.report()
    }

    /// Instant the given die becomes free.
    pub fn die_free_at(&self, die: u32) -> SimTime {
        self.dies[die as usize].free_at()
    }

    /// `true` when every die is idle at `now` — the paper's Eq. 1 only
    /// classifies a cluster as hot *"when the target FIMM device is
    /// available to serve I/O requests"*.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.dies.iter().all(|d| d.is_free_at(now))
    }

    /// Validates and accepts a command, reserving die time.
    ///
    /// Returns the operation timing; the caller (the FIMM) layers channel
    /// transfer on top.
    ///
    /// # Errors
    ///
    /// Structural errors from [`FlashCommand::validate`], plus
    /// [`FlashError::ProgramOrder`], [`FlashError::OverwriteWithoutErase`]
    /// and [`FlashError::WornOut`] for violations of NAND physics.
    pub fn begin_op(&mut self, now: SimTime, cmd: &FlashCommand) -> Result<OpTiming, FlashError> {
        cmd.validate(&self.geom)?;
        self.check_state(cmd)?;
        self.apply_state(cmd);

        let exe = match cmd.kind {
            // MLC fast/slow page pairing: the slowest target governs the
            // array operation.
            OpKind::Program => cmd
                .targets
                .iter()
                .map(|t| self.timing.prog_nanos_for_page(t.page))
                .max()
                .unwrap_or_else(|| self.timing.exe_nanos(cmd.kind)),
            _ => self.timing.exe_nanos(cmd.kind),
        };
        let timing = match cmd.mode {
            CmdMode::Normal | CmdMode::MultiPlane => {
                // Multi-plane targets run concurrently in the array: one
                // die reservation covers all planes.
                let die = cmd.targets[0].die as usize;
                let r = self.dies[die].reserve(now, exe);
                OpTiming {
                    start: r.start,
                    end: r.end,
                    die_wait: r.wait,
                }
            }
            CmdMode::Cache => {
                // Cache registers pipeline sequential pages on one die:
                // the die stays busy for n consecutive array operations
                // without waiting for channel transfers in between.
                let die = cmd.targets[0].die as usize;
                let n = cmd.targets.len() as u64;
                let r = self.dies[die].reserve(now, exe * n);
                OpTiming {
                    start: r.start,
                    end: r.end,
                    die_wait: r.wait,
                }
            }
            CmdMode::DieInterleave => {
                let mut start = SimTime::MAX;
                let mut end = SimTime::ZERO;
                let mut wait: Nanos = 0;
                for &t in &cmd.targets {
                    let r = self.dies[t.die as usize].reserve(now, exe);
                    start = start.min(r.start);
                    end = end.max(r.end);
                    wait = wait.max(r.wait);
                }
                OpTiming {
                    start,
                    end,
                    die_wait: wait,
                }
            }
        };

        match cmd.kind {
            OpKind::Read => self.stats.reads += cmd.targets.len() as u64,
            OpKind::Program => self.stats.programs += cmd.targets.len() as u64,
            OpKind::Erase => self.stats.erases += cmd.targets.len() as u64,
        }
        Ok(timing)
    }

    fn check_state(&self, cmd: &FlashCommand) -> Result<(), FlashError> {
        for &t in &cmd.targets {
            let bidx = self.geom.block_index(t);
            if self.wear.is_retired(bidx) {
                return Err(FlashError::WornOut(t));
            }
            if cmd.kind == OpKind::Program {
                let next = self.blocks.get(&bidx).map_or(0, |b| b.next_page);
                if t.page < next {
                    return Err(FlashError::OverwriteWithoutErase(t));
                }
                if t.page > next {
                    return Err(FlashError::ProgramOrder(t));
                }
            }
        }
        Ok(())
    }

    fn apply_state(&mut self, cmd: &FlashCommand) {
        for &t in &cmd.targets {
            let bidx = self.geom.block_index(t);
            match cmd.kind {
                OpKind::Program => {
                    self.blocks.entry(bidx).or_default().next_page = t.page + 1;
                }
                OpKind::Erase => {
                    self.wear.record_erase(bidx);
                    self.blocks.entry(bidx).or_default().next_page = 0;
                }
                OpKind::Read => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PageAddr;

    fn pkg() -> Package {
        Package::new(FlashGeometry::default(), FlashTiming::default())
    }

    fn a(die: u32, block: u32, page: u32) -> PageAddr {
        PageAddr {
            die,
            plane: block % 2,
            block,
            page,
        }
    }

    #[test]
    fn read_reserves_die() {
        let mut p = pkg();
        let t1 = p
            .begin_op(SimTime::ZERO, &FlashCommand::read(a(0, 0, 0)))
            .unwrap();
        let t2 = p
            .begin_op(SimTime::ZERO, &FlashCommand::read(a(0, 0, 1)))
            .unwrap();
        assert_eq!(t1.die_wait, 0);
        assert_eq!(t2.die_wait, 26_000, "second read waits one t_exe");
        assert_eq!(t2.start, t1.end);
        assert_eq!(p.stats().reads, 2);
    }

    #[test]
    fn dies_are_independent() {
        let mut p = pkg();
        p.begin_op(SimTime::ZERO, &FlashCommand::read(a(0, 0, 0)))
            .unwrap();
        let other = p
            .begin_op(SimTime::ZERO, &FlashCommand::read(a(1, 0, 0)))
            .unwrap();
        assert_eq!(other.die_wait, 0);
    }

    #[test]
    fn die_interleave_parallelises() {
        let mut p = pkg();
        let cmd = FlashCommand::multi(
            OpKind::Read,
            vec![a(0, 0, 0), a(1, 0, 0)],
            CmdMode::DieInterleave,
        );
        let t = p.begin_op(SimTime::ZERO, &cmd).unwrap();
        assert_eq!(t.end - t.start, 26_000, "both dies in parallel");
    }

    #[test]
    fn multiplane_single_die_reservation() {
        let mut p = pkg();
        let cmd = FlashCommand::multi(
            OpKind::Read,
            vec![a(0, 0, 5), a(0, 1, 5)],
            CmdMode::MultiPlane,
        );
        let t = p.begin_op(SimTime::ZERO, &cmd).unwrap();
        assert_eq!(t.end - t.start, 26_000, "planes run concurrently");
        assert!(!p.is_idle_at(SimTime::from_nanos(1_000)));
        assert!(p.is_idle_at(SimTime::from_nanos(26_000)));
    }

    #[test]
    fn cache_mode_chains_array_ops() {
        let mut p = pkg();
        let cmd = FlashCommand::multi(
            OpKind::Read,
            vec![a(0, 0, 0), a(0, 0, 1), a(0, 0, 2)],
            CmdMode::Cache,
        );
        let t = p.begin_op(SimTime::ZERO, &cmd).unwrap();
        assert_eq!(t.end - t.start, 3 * 26_000);
    }

    #[test]
    fn program_order_enforced() {
        let mut p = pkg();
        assert!(p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0)))
            .is_ok());
        assert!(p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 1)))
            .is_ok());
        // skipping page 2 -> page 3 is out of order
        assert_eq!(
            p.begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 3))),
            Err(FlashError::ProgramOrder(a(0, 0, 3)))
        );
        // rewriting page 0 without erase is forbidden
        assert_eq!(
            p.begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0))),
            Err(FlashError::OverwriteWithoutErase(a(0, 0, 0)))
        );
    }

    #[test]
    fn erase_resets_program_pointer() {
        let mut p = pkg();
        p.begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0)))
            .unwrap();
        p.begin_op(SimTime::ZERO, &FlashCommand::erase(a(0, 0, 0)))
            .unwrap();
        assert!(p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0)))
            .is_ok());
        assert_eq!(p.wear_report().total_erases, 1);
    }

    #[test]
    fn worn_out_block_rejects_ops() {
        let geom = FlashGeometry {
            endurance: 1,
            ..FlashGeometry::default()
        };
        let mut p = Package::new(geom, FlashTiming::default());
        p.begin_op(SimTime::ZERO, &FlashCommand::erase(a(0, 0, 0)))
            .unwrap();
        assert_eq!(
            p.begin_op(SimTime::ZERO, &FlashCommand::erase(a(0, 0, 0))),
            Err(FlashError::WornOut(a(0, 0, 0)))
        );
        assert_eq!(
            p.begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0))),
            Err(FlashError::WornOut(a(0, 0, 0)))
        );
        // other blocks unaffected
        assert!(p
            .begin_op(SimTime::ZERO, &FlashCommand::read(a(0, 2, 0)))
            .is_ok());
    }

    #[test]
    fn mlc_pairing_affects_program_timing() {
        let mut p = Package::new(FlashGeometry::default(), FlashTiming::mlc());
        let fast = p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 0)))
            .unwrap();
        let slow = p
            .begin_op(SimTime::ZERO, &FlashCommand::program(a(0, 0, 1)))
            .unwrap();
        assert_eq!(fast.end - fast.start, 601_000, "LSB page");
        assert_eq!(slow.end - slow.start, 1_201_000, "MSB page 2x slower");
    }

    #[test]
    fn invalid_command_leaves_state_untouched() {
        let mut p = pkg();
        let bad = FlashCommand::multi(
            OpKind::Program,
            vec![a(0, 0, 0), a(0, 2, 0)],
            CmdMode::MultiPlane,
        );
        assert!(p.begin_op(SimTime::ZERO, &bad).is_err());
        assert_eq!(p.stats().programs, 0);
        assert!(p.is_idle_at(SimTime::ZERO));
    }
}
