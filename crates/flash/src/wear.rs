//! Per-block wear (P/E cycle) accounting, used for the paper's §6.5
//! migration wear-out analysis and the §6.7 global wear-levelling hooks.

use triplea_sim::{FxHashMap, FxHashSet};

/// Tracks erase counts per block and retires blocks that exceed their
/// endurance.
///
/// # Example
///
/// ```
/// use triplea_flash::WearTracker;
///
/// let mut w = WearTracker::new(3);
/// for _ in 0..3 {
///     assert!(w.record_erase(7));
/// }
/// assert!(!w.record_erase(7)); // retired after 3 P/E cycles
/// assert!(w.is_retired(7));
/// ```
#[derive(Clone, Debug)]
pub struct WearTracker {
    endurance: u32,
    erase_counts: FxHashMap<u64, u32>,
    total_erases: u64,
    retired: u64,
    /// Grown bad blocks: retired by a hardware program/erase failure
    /// before reaching the endurance limit.
    forced: FxHashSet<u64>,
}

impl WearTracker {
    /// Creates a tracker with the given P/E endurance per block.
    pub fn new(endurance: u32) -> Self {
        WearTracker {
            endurance,
            erase_counts: FxHashMap::default(),
            total_erases: 0,
            retired: 0,
            forced: FxHashSet::default(),
        }
    }

    /// Records an erase of `block`. Returns `false` (and records nothing)
    /// if the block is already retired; retires it when the erase brings
    /// it to the endurance limit.
    pub fn record_erase(&mut self, block: u64) -> bool {
        if self.forced.contains(&block) {
            return false;
        }
        let c = self.erase_counts.entry(block).or_insert(0);
        if *c >= self.endurance {
            return false;
        }
        *c += 1;
        self.total_erases += 1;
        if *c >= self.endurance {
            self.retired += 1;
        }
        true
    }

    /// Erase count of `block` (0 if never erased).
    pub fn erase_count(&self, block: u64) -> u32 {
        self.erase_counts.get(&block).copied().unwrap_or(0)
    }

    /// Retires `block` immediately — a *grown bad block* after a hardware
    /// program or erase failure, independent of its erase count. Returns
    /// `false` if it was already retired.
    pub fn force_retire(&mut self, block: u64) -> bool {
        if self.is_retired(block) {
            return false;
        }
        self.forced.insert(block);
        self.retired += 1;
        true
    }

    /// `true` once the block hit its endurance limit or was force-retired
    /// as a grown bad block.
    pub fn is_retired(&self, block: u64) -> bool {
        self.forced.contains(&block) || self.erase_count(block) >= self.endurance
    }

    /// All retired blocks — worn out *and* grown bad — in ascending
    /// order, so bad-block remapping and reporting stay deterministic.
    pub fn retired_blocks(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .erase_counts
            .iter()
            .filter(|&(_, &c)| c >= self.endurance)
            .map(|(&b, _)| b)
            .chain(self.forced.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// Endurance limit this tracker enforces.
    pub fn endurance(&self) -> u32 {
        self.endurance
    }

    /// Aggregate wear snapshot.
    pub fn report(&self) -> WearReport {
        let touched = self.erase_counts.len() as u64;
        let max = self.erase_counts.values().copied().max().unwrap_or(0);
        let mean = if touched == 0 {
            0.0
        } else {
            self.total_erases as f64 / touched as f64
        };
        WearReport {
            total_erases: self.total_erases,
            touched_blocks: touched,
            max_erase_count: max,
            mean_erase_count: mean,
            retired_blocks: self.retired,
            endurance: self.endurance,
        }
    }
}

/// Aggregate wear statistics for one package (or, merged, a whole array).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct WearReport {
    /// Total erase operations performed.
    pub total_erases: u64,
    /// Number of distinct blocks ever erased.
    pub touched_blocks: u64,
    /// Highest per-block erase count.
    pub max_erase_count: u32,
    /// Mean erase count over touched blocks.
    pub mean_erase_count: f64,
    /// Blocks retired for reaching the endurance limit.
    pub retired_blocks: u64,
    /// Endurance limit in force.
    pub endurance: u32,
}

impl WearReport {
    /// Fraction of worst-case block life consumed, in `[0, 1]`.
    pub fn worst_life_consumed(&self) -> f64 {
        if self.endurance == 0 {
            0.0
        } else {
            (self.max_erase_count as f64 / self.endurance as f64).min(1.0)
        }
    }

    /// Folds another report into this one (blocks are assumed disjoint,
    /// as when merging per-package reports).
    pub fn merge(&mut self, other: &WearReport) {
        let total_touched = self.touched_blocks + other.touched_blocks;
        if total_touched > 0 {
            self.mean_erase_count = (self.mean_erase_count * self.touched_blocks as f64
                + other.mean_erase_count * other.touched_blocks as f64)
                / total_touched as f64;
        }
        self.total_erases += other.total_erases;
        self.touched_blocks = total_touched;
        self.max_erase_count = self.max_erase_count.max(other.max_erase_count);
        self.retired_blocks += other.retired_blocks;
        self.endurance = self.endurance.max(other.endurance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut w = WearTracker::new(100);
        w.record_erase(1);
        w.record_erase(1);
        w.record_erase(2);
        assert_eq!(w.erase_count(1), 2);
        assert_eq!(w.erase_count(2), 1);
        assert_eq!(w.erase_count(3), 0);
        let r = w.report();
        assert_eq!(r.total_erases, 3);
        assert_eq!(r.touched_blocks, 2);
        assert_eq!(r.max_erase_count, 2);
        assert!((r.mean_erase_count - 1.5).abs() < 1e-12);
    }

    #[test]
    fn retirement_at_endurance() {
        let mut w = WearTracker::new(2);
        assert!(w.record_erase(5));
        assert!(!w.is_retired(5));
        assert!(w.record_erase(5));
        assert!(w.is_retired(5));
        assert!(!w.record_erase(5));
        assert_eq!(w.report().retired_blocks, 1);
        assert_eq!(w.erase_count(5), 2);
    }

    #[test]
    fn life_consumed_fraction() {
        let mut w = WearTracker::new(10);
        for _ in 0..4 {
            w.record_erase(0);
        }
        assert!((w.report().worst_life_consumed() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_disjoint_packages() {
        let mut a = WearTracker::new(10);
        let mut b = WearTracker::new(10);
        a.record_erase(0);
        a.record_erase(0);
        b.record_erase(1);
        let mut ra = a.report();
        ra.merge(&b.report());
        assert_eq!(ra.total_erases, 3);
        assert_eq!(ra.touched_blocks, 2);
        assert_eq!(ra.max_erase_count, 2);
        assert!((ra.mean_erase_count - 1.5).abs() < 1e-12);
    }

    #[test]
    fn force_retire_grows_bad_blocks() {
        let mut w = WearTracker::new(100);
        w.record_erase(3);
        assert!(w.force_retire(3));
        assert!(w.is_retired(3));
        assert!(!w.force_retire(3), "second retirement is a no-op");
        assert!(!w.record_erase(3), "bad blocks reject further erases");
        assert_eq!(w.report().retired_blocks, 1);
        assert_eq!(w.erase_count(3), 1, "forced retirement keeps the count");
    }

    #[test]
    fn retired_blocks_lists_worn_and_forced_sorted() {
        let mut w = WearTracker::new(2);
        w.record_erase(9);
        w.record_erase(9); // worn out
        w.force_retire(4); // grown bad
        w.record_erase(1); // healthy
        assert_eq!(w.retired_blocks(), vec![4, 9]);
        assert!(!w.force_retire(9), "worn block already retired");
        assert_eq!(w.report().retired_blocks, 2);
    }

    #[test]
    fn empty_report_is_zeroed() {
        let w = WearTracker::new(10);
        let r = w.report();
        assert_eq!(r.total_erases, 0);
        assert_eq!(r.worst_life_consumed(), 0.0);
    }
}
