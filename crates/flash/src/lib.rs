//! Bare NAND flash package model — the storage medium of the Triple-A
//! all-flash array (paper §2.2, Figure 3).
//!
//! A *package* contains several *dies* operating in parallel; each die
//! stacks *planes* (identified by even/odd block addresses) which can
//! service multi-plane commands concurrently; internal *cache and data
//! registers* decouple the memory array from the I/O interface; an
//! *embedded controller* parses ONFi commands and runs ECC.
//!
//! The model is metadata-only: it tracks state, timing, and wear, never
//! data bytes, which is what lets the simulator cover 16 TB arrays.
//!
//! # Example
//!
//! ```
//! use triplea_flash::{FlashCommand, FlashGeometry, FlashTiming, Package, PageAddr};
//! use triplea_sim::SimTime;
//!
//! let geom = FlashGeometry::default();
//! let mut pkg = Package::new(geom, FlashTiming::default());
//! let addr = PageAddr { die: 0, plane: 0, block: 0, page: 0 };
//! let op = pkg.begin_op(SimTime::ZERO, &FlashCommand::read(addr))?;
//! assert_eq!(op.die_wait, 0);
//! # Ok::<(), triplea_flash::FlashError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod command;
mod error;
mod fault;
mod geometry;
mod package;
mod timing;
mod wear;

pub use command::{CmdMode, FlashCommand, OpKind};
pub use error::FlashError;
pub use fault::{FlashFaultProfile, PackageFaultStats};
pub use geometry::{FlashGeometry, PageAddr};
pub use package::{OpTiming, Package, PackageStats};
pub use timing::{FlashTiming, OnfiTiming};
pub use wear::{WearReport, WearTracker};
