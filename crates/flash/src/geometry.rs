//! Physical geometry of a NAND flash package.

use crate::error::FlashError;

/// Shape of one NAND flash package (paper Figure 3).
///
/// The default matches the reproduction's 8 GB package: 2 dies × 2 planes
/// × 4096 blocks × 128 pages × 4 KB.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    /// Dies per package; dies execute commands in parallel.
    pub dies: u32,
    /// Planes per die; identified by even/odd block addresses (§2.2).
    pub planes: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block; pages must be programmed in order within a block.
    pub pages_per_block: u32,
    /// Main-area page size in bytes.
    pub page_size: u32,
    /// Erase endurance: P/E cycles before a block is retired.
    pub endurance: u32,
}

impl Default for FlashGeometry {
    fn default() -> Self {
        FlashGeometry {
            dies: 2,
            planes: 2,
            blocks_per_plane: 4096,
            pages_per_block: 128,
            page_size: 4096,
            endurance: 3000,
        }
    }
}

impl FlashGeometry {
    /// Total number of blocks in the package.
    pub fn total_blocks(&self) -> u64 {
        self.dies as u64 * self.planes as u64 * self.blocks_per_plane as u64
    }

    /// Total number of pages in the package.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Which plane a block address belongs to (even/odd identification,
    /// generalised to `block % planes`).
    pub fn plane_of_block(&self, block: u32) -> u32 {
        block % self.planes
    }

    /// Validates a page address against this geometry.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::InvalidAddress`] when any coordinate is out of
    /// range or the block's even/odd parity does not match its plane.
    pub fn check(&self, addr: PageAddr) -> Result<(), FlashError> {
        let per_plane_blocks = self.blocks_per_plane * self.planes;
        if addr.die >= self.dies
            || addr.plane >= self.planes
            || addr.block >= per_plane_blocks
            || addr.page >= self.pages_per_block
            || self.plane_of_block(addr.block) != addr.plane
        {
            return Err(FlashError::InvalidAddress(addr));
        }
        Ok(())
    }

    /// Linearises a (die, plane, block, page) address into a package-wide
    /// page index; the inverse of [`FlashGeometry::page_from_index`].
    pub fn page_index(&self, addr: PageAddr) -> u64 {
        let blocks_per_die = (self.blocks_per_plane * self.planes) as u64;
        let block_global = addr.die as u64 * blocks_per_die + addr.block as u64;
        block_global * self.pages_per_block as u64 + addr.page as u64
    }

    /// Reconstructs an address from a package-wide page index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` exceeds [`FlashGeometry::total_pages`].
    pub fn page_from_index(&self, idx: u64) -> PageAddr {
        assert!(idx < self.total_pages(), "page index out of range");
        let blocks_per_die = (self.blocks_per_plane * self.planes) as u64;
        let block_global = idx / self.pages_per_block as u64;
        let page = (idx % self.pages_per_block as u64) as u32;
        let die = (block_global / blocks_per_die) as u32;
        let block = (block_global % blocks_per_die) as u32;
        PageAddr {
            die,
            plane: self.plane_of_block(block),
            block,
            page,
        }
    }

    /// Package-wide block index of an address (for wear bookkeeping).
    pub fn block_index(&self, addr: PageAddr) -> u64 {
        let blocks_per_die = (self.blocks_per_plane * self.planes) as u64;
        addr.die as u64 * blocks_per_die + addr.block as u64
    }
}

/// Physical address of one page inside a package.
///
/// `block` is the die-local block number; its parity (`block % planes`)
/// determines the plane, mirroring the even/odd addressing of §2.2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr {
    /// Die within the package.
    pub die: u32,
    /// Plane within the die (must equal `block % planes`).
    pub plane: u32,
    /// Block within the die.
    pub block: u32,
    /// Page within the block.
    pub page: u32,
}

impl std::fmt::Display for PageAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "d{}p{}b{}pg{}",
            self.die, self.plane, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacity_is_8gib() {
        let g = FlashGeometry::default();
        assert_eq!(g.capacity_bytes(), 8 * 1024 * 1024 * 1024);
        assert_eq!(g.total_blocks(), 2 * 2 * 4096);
    }

    #[test]
    fn plane_parity_enforced() {
        let g = FlashGeometry::default();
        let ok = PageAddr {
            die: 0,
            plane: 1,
            block: 3,
            page: 0,
        };
        assert!(g.check(ok).is_ok());
        let bad = PageAddr {
            die: 0,
            plane: 0,
            block: 3,
            page: 0,
        };
        assert!(matches!(g.check(bad), Err(FlashError::InvalidAddress(_))));
    }

    #[test]
    fn out_of_range_rejected() {
        let g = FlashGeometry::default();
        for bad in [
            PageAddr {
                die: 2,
                plane: 0,
                block: 0,
                page: 0,
            },
            PageAddr {
                die: 0,
                plane: 0,
                block: 2 * 4096,
                page: 0,
            },
            PageAddr {
                die: 0,
                plane: 0,
                block: 0,
                page: 128,
            },
        ] {
            assert!(g.check(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn page_index_roundtrip() {
        let g = FlashGeometry::default();
        for idx in [0u64, 1, 127, 128, 1_048_575, g.total_pages() - 1] {
            let addr = g.page_from_index(idx);
            assert!(g.check(addr).is_ok(), "{addr:?}");
            assert_eq!(g.page_index(addr), idx);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_from_index_bounds() {
        let g = FlashGeometry::default();
        g.page_from_index(g.total_pages());
    }

    #[test]
    fn display_is_compact() {
        let addr = PageAddr {
            die: 1,
            plane: 0,
            block: 2,
            page: 3,
        };
        assert_eq!(addr.to_string(), "d1p0b2pg3");
    }
}
