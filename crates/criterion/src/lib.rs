//! Offline, minimal subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored stub provides the surface `benches/simulator.rs` uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical engine, each benchmark runs a short
//! fixed warm-up plus a fixed measurement batch and prints the mean
//! nanoseconds per iteration — enough to eyeball regressions and to keep
//! the bench targets compiling and runnable.

#![forbid(unsafe_code)]

use std::time::Instant;

/// How batched inputs are grouped; accepted for API compatibility, the
/// stub always runs one input per routine invocation.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup cost.
    SmallInput,
    /// Large per-iteration setup cost.
    LargeInput,
    /// Setup re-runs for every single iteration.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

/// Runs the measured closure; handed to the user's bench function.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            mean_ns: 0.0,
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then the measured batch.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / self.iters as f64;
    }
}

/// Entry point handed to each registered benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn run_one(name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(iters);
    f(&mut b);
    println!("bench {name:<40} {:>14.1} ns/iter", b.mean_ns);
}

impl Criterion {
    /// Registers and immediately runs a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Overrides the number of measured iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Registers and immediately runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one runner function, mirroring
/// criterion's simple (non-`config`) form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn api_surface_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.finish();
    }

    criterion_group!(bench_group, sample_bench);
    criterion_main!(main_entry);
    fn main_entry() {
        bench_group();
    }

    #[test]
    fn macros_compose() {
        main();
    }
}
