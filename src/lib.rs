//! # Triple-A: a non-SSD based autonomic all-flash array
//!
//! Facade crate for the reproduction of *"Triple-A: A Non-SSD Based
//! Autonomic All-Flash Array for High Performance Storage Systems"*
//! (Jung, Choi, Shalf, Kandemir — ASPLOS 2014).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`sim`] — discrete-event simulation kernel.
//! * [`flash`] — bare NAND flash package model (dies, planes, commands,
//!   timing, wear).
//! * [`fimm`] — Flash Inline Memory Module: 8 packages on a shared
//!   NV-DDR2 channel.
//! * [`pcie`] — PCI-Express fabric: root complex, switches, endpoints,
//!   links, flow control.
//! * [`ftl`] — host-side flash software: HAL, address mapping, garbage
//!   collection, wear-levelling.
//! * [`core`] — the flash array itself plus the autonomic management
//!   module (hot-cluster detection, data migration with shadow cloning,
//!   laggard detection, data-layout reshaping).
//! * [`workloads`] — Table-1 workload profiles, synthetic trace
//!   generators and micro-benchmarks.
//!
//! # Quickstart
//!
//! ```
//! use triple_a::core::{Array, ArrayConfig, ManagementMode};
//! use triple_a::workloads::Microbench;
//!
//! // A small 2x4 array (2 switches, 4 clusters each).
//! let cfg = ArrayConfig::small_test();
//! let trace = Microbench::read()
//!     .hot_clusters(2)
//!     .requests(2_000)
//!     .build(&cfg, 42);
//! let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
//! assert_eq!(report.completed(), 2_000);
//! println!("mean latency: {:.1}us", report.mean_latency_us());
//! ```

pub use triplea_core as core;
pub use triplea_fimm as fimm;
pub use triplea_flash as flash;
pub use triplea_ftl as ftl;
pub use triplea_pcie as pcie;
pub use triplea_sim as sim;
pub use triplea_workloads as workloads;
