//! Integration tests for the extension features: CSV trace interchange,
//! Zipfian/bursty workloads, the mapping cache, GC policies, and flash
//! generations — all exercised through the public facade.

use triple_a::core::{Array, ArrayConfig, ManagementMode};
use triple_a::flash::FlashTiming;
use triple_a::ftl::GcPolicy;
use triple_a::workloads::{csv, Microbench};

fn small() -> ArrayConfig {
    ArrayConfig::small_test()
}

/// Validated variant of [`small`] for tests that tweak fields: routes
/// the edit through the cross-field-checking builder.
fn small_with(f: impl FnOnce(&mut ArrayConfig)) -> ArrayConfig {
    ArrayConfig::small_builder()
        .tune(f)
        .build()
        .expect("test configuration validates")
}

#[test]
fn csv_roundtrip_preserves_simulation_results() {
    let cfg = small();
    let original = Microbench::read()
        .hot_clusters(1)
        .requests(3_000)
        .gap_ns(1_400)
        .build(&cfg, 21);
    let mut buf = Vec::new();
    csv::write_trace(&mut buf, &original).unwrap();
    let parsed = csv::parse_trace(buf.as_slice()).unwrap();

    let a = Array::new(cfg.clone(), ManagementMode::Autonomic).run(&original);
    let b = Array::new(cfg, ManagementMode::Autonomic).run(&parsed);
    assert_eq!(a.events_processed(), b.events_processed());
    assert_eq!(a.mean_latency_us(), b.mean_latency_us());
}

#[test]
fn zipf_skew_concentrates_and_still_completes() {
    let cfg = small();
    let trace = Microbench::read()
        .hot_clusters(2)
        .zipf(0.99)
        .requests(8_000)
        .gap_ns(1_400)
        .build(&cfg, 22);
    let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
    assert_eq!(report.completed(), 8_000);
    // The autonomic layer should still relieve the (zipf-shaped) hot load.
    assert!(report.autonomic_stats().migrations_started > 0);
}

#[test]
fn bursty_arrivals_run_and_idle_gaps_show_up() {
    let cfg = small();
    let trace = Microbench::write()
        .hot_clusters(1)
        .bursty(500_000, 2_000_000)
        .gap_ns(2_000)
        .requests(2_000)
        .build(&cfg, 23);
    let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
    assert_eq!(report.completed(), 2_000);
    // Eight-ish bursts of 250 requests: the makespan must include the
    // OFF windows.
    assert!(report.makespan().as_ms_f64() > 10.0);
}

#[test]
fn gc_policies_all_survive_sustained_overwrites() {
    for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::Fifo] {
        let cfg = small_with(|c| {
            c.shape.flash.blocks_per_plane = 8;
            c.gc_threshold_blocks = 8;
            c.gc_policy = policy;
        });
        let trace = Microbench::write()
            .hot_clusters(1)
            .region_pages(64)
            .requests(20_000)
            .gap_ns(2_000)
            .build(&cfg, 24);
        let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
        assert_eq!(report.completed(), 20_000, "{policy:?}");
        assert!(report.ftl_stats().gc_erases > 0, "{policy:?} never cleaned");
    }
}

#[test]
fn mlc_and_slc_generations_both_run_autonomic() {
    for timing in [FlashTiming::default(), FlashTiming::mlc()] {
        let cfg = small_with(|c| c.flash_timing = timing);
        let trace = Microbench::read()
            .hot_clusters(1)
            .requests(5_000)
            .gap_ns(1_600)
            .build(&cfg, 25);
        let report = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
        assert_eq!(report.completed(), 5_000);
    }
}

#[test]
fn mapping_cache_hit_rate_reported_through_ftl() {
    let cfg = small_with(|c| c.mapping_cache_pages = 64);
    let trace = Microbench::read()
        .hot_clusters(1)
        .region_pages(256)
        .requests(4_000)
        .gap_ns(2_000)
        .build(&cfg, 26);
    let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
    assert_eq!(report.completed(), 4_000);
    // A 256-page hot region spans a single translation page: after the
    // cold miss, essentially everything hits, so the run is barely
    // slower than the free-map baseline.
    let free_map = Array::new(small(), ManagementMode::NonAutonomic).run(&trace);
    assert!(report.mean_latency_us() < free_map.mean_latency_us() * 1.25);
}
