//! Property-based tests over the whole simulator: random (valid) traces
//! must complete, conserve requests, and keep latency accounting sane in
//! both management modes.

use proptest::prelude::*;

use triple_a::core::{Array, ArrayConfig, IoOp, ManagementMode, Trace, TraceRequest};
use triple_a::ftl::LogicalPage;
use triple_a::sim::SimTime;

fn small() -> ArrayConfig {
    ArrayConfig::small_test()
}

prop_compose! {
    /// A random, structurally valid request: size-aligned power-of-two
    /// page count within the address space.
    fn arb_request(total_pages: u64)
        (at_us in 0u64..3_000,
         pages_log in 0u32..3,
         slot in 0u64..1_000,
         is_read in prop::bool::weighted(0.6))
        -> TraceRequest
    {
        let pages = 1u32 << pages_log;
        let lpn = (slot * pages as u64) % (total_pages - pages as u64);
        let lpn = lpn - lpn % pages as u64;
        TraceRequest {
            at: SimTime::from_us(at_us),
            op: if is_read { IoOp::Read } else { IoOp::Write },
            lpn: LogicalPage(lpn),
            pages,
        }
    }
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    let total = small().shape.total_pages();
    prop::collection::vec(arb_request(total), 1..300).prop_map(Trace::new)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn every_request_completes_in_both_modes(trace in arb_trace()) {
        for mode in [ManagementMode::NonAutonomic, ManagementMode::Autonomic] {
            let report = Array::new(small(), mode).run(&trace);
            prop_assert_eq!(report.completed(), trace.len() as u64);
            prop_assert_eq!(report.reads() + report.writes(), trace.len() as u64);
        }
    }

    #[test]
    fn latency_accounting_is_bounded(trace in arb_trace()) {
        let report = Array::new(small(), ManagementMode::Autonomic).run(&trace);
        // Per-request buckets are *sums over parallel parts*, so they
        // may exceed wall time — but never by more than the maximum
        // request parallelism (4 pages => 4 concurrent parts).
        let waits = report.avg_queue_stall_us()
            + report.avg_direct_link_wait_us()
            + report.avg_direct_storage_wait_us();
        prop_assert!(waits <= report.mean_latency_us() * 4.1 + 1.0,
            "waits {} > 4x mean {}", waits, report.mean_latency_us());
        prop_assert!(report.mean_latency_us() > 0.0);
        // Attributed contention never exceeds direct + queue stall.
        prop_assert!(report.avg_link_contention_us() + report.avg_storage_contention_us()
            <= report.avg_queue_stall_us()
             + report.avg_direct_link_wait_us()
             + report.avg_direct_storage_wait_us() + 1.0);
    }

    #[test]
    fn relocation_pages_conserved(trace in arb_trace()) {
        let report = Array::new(small(), ManagementMode::Autonomic).run(&trace);
        let stats = report.autonomic_stats();
        prop_assert_eq!(
            stats.pages_migrated + stats.pages_reshaped,
            report.ftl_stats().migration_writes
        );
        prop_assert_eq!(stats.migrations_started, stats.migrations_completed);
    }

    #[test]
    fn non_autonomic_never_relocates(trace in arb_trace()) {
        let report = Array::new(small(), ManagementMode::NonAutonomic).run(&trace);
        prop_assert_eq!(report.ftl_stats().migration_writes, 0);
        prop_assert_eq!(report.autonomic_stats().hot_detections, 0);
    }

    #[test]
    fn host_write_count_matches_trace(trace in arb_trace()) {
        let report = Array::new(small(), ManagementMode::NonAutonomic).run(&trace);
        let pages_written: u64 = trace
            .requests()
            .iter()
            .filter(|r| r.op == IoOp::Write)
            .map(|r| r.pages as u64)
            .sum();
        prop_assert_eq!(report.ftl_stats().host_writes, pages_written);
    }
}
