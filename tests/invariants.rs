//! Property-based tests over the whole simulator: random (valid) traces
//! must complete, conserve requests, and keep latency accounting sane in
//! both management modes.

use proptest::prelude::*;

use triple_a::core::{
    Array, ArrayConfig, IoOp, LaggardPolicy, ManagementMode, Simulation, TenantId, TenantSpec,
    Trace, TraceRequest, VolumeMapper, VolumeSpec, WeightedArbiter,
};
use triple_a::ftl::LogicalPage;
use triple_a::sim::{run_conservative, Envelope, EventQueue, Outbox, Shard, SimTime};

fn small() -> ArrayConfig {
    ArrayConfig::small_test()
}

/// Toy shard for the conservative-executor properties: every event
/// carries a hop budget; executing it folds `(time, hops, id)` into an
/// order-sensitive checksum and forwards the remainder to a
/// deterministically chosen neighbour one link latency away.
struct Relay {
    id: usize,
    shards: usize,
    link_ns: u64,
    queue: EventQueue<u32>,
    checksum: u64,
    executed: u64,
}

impl Relay {
    fn new(id: usize, shards: usize, link_ns: u64) -> Self {
        Relay {
            id,
            shards,
            link_ns,
            queue: EventQueue::new(),
            checksum: 0,
            executed: 0,
        }
    }
}

impl Shard for Relay {
    type Msg = u32;

    fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn run_window(&mut self, horizon: SimTime, out: &mut Outbox<u32>) {
        while self.queue.peek_time().is_some_and(|t| t < horizon) {
            let (t, hops) = self.queue.pop().unwrap();
            self.executed += 1;
            self.checksum = self
                .checksum
                .wrapping_mul(0x100000001B3)
                .wrapping_add(t.as_nanos() ^ ((hops as u64) << 20) ^ self.id as u64);
            if hops > 0 {
                let dst = (self.id + 1 + hops as usize) % self.shards;
                out.send(dst, t + self.link_ns, hops - 1);
            }
        }
    }

    fn deliver(&mut self, env: Envelope<u32>) {
        self.queue.push(env.at, env.msg);
    }
}

prop_compose! {
    /// A random, structurally valid request: size-aligned power-of-two
    /// page count within the address space.
    fn arb_request(total_pages: u64)
        (at_us in 0u64..3_000,
         pages_log in 0u32..3,
         slot in 0u64..1_000,
         is_read in prop::bool::weighted(0.6))
        -> TraceRequest
    {
        let pages = 1u32 << pages_log;
        let lpn = (slot * pages as u64) % (total_pages - pages as u64);
        let lpn = lpn - lpn % pages as u64;
        TraceRequest::new(
            SimTime::from_us(at_us),
            if is_read { IoOp::Read } else { IoOp::Write },
            LogicalPage(lpn),
            pages,
        )
    }
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    let total = small().shape.total_pages();
    prop::collection::vec(arb_request(total), 1..300).prop_map(Trace::new)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn every_request_completes_in_both_modes(trace in arb_trace()) {
        for mode in [ManagementMode::NonAutonomic, ManagementMode::Autonomic] {
            let report = Array::new(small(), mode).run(&trace);
            prop_assert_eq!(report.completed(), trace.len() as u64);
            prop_assert_eq!(report.reads() + report.writes(), trace.len() as u64);
        }
    }

    #[test]
    fn latency_accounting_is_bounded(trace in arb_trace()) {
        let report = Array::new(small(), ManagementMode::Autonomic).run(&trace);
        // Per-request buckets are *sums over parallel parts*, so they
        // may exceed wall time — but never by more than the maximum
        // request parallelism (4 pages => 4 concurrent parts).
        let waits = report.avg_queue_stall_us()
            + report.avg_direct_link_wait_us()
            + report.avg_direct_storage_wait_us();
        prop_assert!(waits <= report.mean_latency_us() * 4.1 + 1.0,
            "waits {} > 4x mean {}", waits, report.mean_latency_us());
        prop_assert!(report.mean_latency_us() > 0.0);
        // Attributed contention never exceeds direct + queue stall.
        prop_assert!(report.avg_link_contention_us() + report.avg_storage_contention_us()
            <= report.avg_queue_stall_us()
             + report.avg_direct_link_wait_us()
             + report.avg_direct_storage_wait_us() + 1.0);
    }

    #[test]
    fn relocation_pages_conserved(trace in arb_trace()) {
        let report = Array::new(small(), ManagementMode::Autonomic).run(&trace);
        let stats = report.autonomic_stats();
        prop_assert_eq!(
            stats.pages_migrated + stats.pages_reshaped,
            report.ftl_stats().migration_writes
        );
        prop_assert_eq!(stats.migrations_started, stats.migrations_completed);
    }

    #[test]
    fn non_autonomic_never_relocates(trace in arb_trace()) {
        let report = Array::new(small(), ManagementMode::NonAutonomic).run(&trace);
        prop_assert_eq!(report.ftl_stats().migration_writes, 0);
        prop_assert_eq!(report.autonomic_stats().hot_detections, 0);
    }

    #[test]
    fn host_write_count_matches_trace(trace in arb_trace()) {
        let report = Array::new(small(), ManagementMode::NonAutonomic).run(&trace);
        let pages_written: u64 = trace
            .requests()
            .iter()
            .filter(|r| r.op == IoOp::Write)
            .map(|r| r.pages as u64)
            .sum();
        prop_assert_eq!(report.ftl_stats().host_writes, pages_written);
    }

    /// Causality on arbitrary shard topologies: for any shard count,
    /// link latency, and seeded event splay, no shard ever executes past
    /// an undelivered cross-shard message (`late_deliveries == 0`), and
    /// the per-shard checksums — order-sensitive folds of execution —
    /// are invariant to the worker count.
    #[test]
    fn shard_executor_is_causal_and_worker_invariant(
        shards in 2usize..6,
        link_ns in 20u64..200,
        seeds in prop::collection::vec((0u64..5_000, 1u32..12), 4..40),
    ) {
        let run = |workers: usize| {
            let mut net: Vec<Relay> =
                (0..shards).map(|i| Relay::new(i, shards, link_ns)).collect();
            for (k, &(at, hops)) in seeds.iter().enumerate() {
                net[k % shards].queue.push(SimTime::from_nanos(at), hops);
            }
            let stats = run_conservative(&mut net, link_ns, workers, SimTime::MAX);
            let sums: Vec<u64> = net.iter().map(|r| r.checksum).collect();
            let execs: Vec<u64> = net.iter().map(|r| r.executed).collect();
            (sums, execs, stats)
        };
        let (sums1, execs1, stats1) = run(1);
        prop_assert_eq!(stats1.late_deliveries, 0u64);
        let total: u64 = execs1.iter().sum();
        let budget: u64 = seeds.iter().map(|&(_, h)| h as u64 + 1).sum();
        prop_assert_eq!(total, budget, "every hop executes exactly once");
        for workers in [2usize, 4] {
            let (sums, execs, stats) = run(workers);
            prop_assert_eq!(&sums, &sums1, "checksums drifted at {} workers", workers);
            prop_assert_eq!(&execs, &execs1);
            prop_assert_eq!(stats.late_deliveries, 0u64);
            prop_assert_eq!(stats.messages, stats1.messages);
        }
    }

    /// The sharded array engine completes exactly the same work at any
    /// worker count, for arbitrary traces: identical completions, event
    /// counts, and latency aggregates.
    #[test]
    fn array_completions_invariant_to_worker_count(trace in arb_trace()) {
        let run = |w: u32| {
            let mut cfg = small();
            cfg.workers = Some(w);
            Array::new(cfg, ManagementMode::Autonomic).run(&trace)
        };
        let one = run(1);
        prop_assert_eq!(one.completed(), trace.len() as u64);
        for w in [2u32, 4] {
            let multi = run(w);
            prop_assert_eq!(multi.completed(), one.completed(), "workers={}", w);
            prop_assert_eq!(multi.events_processed(), one.events_processed());
            prop_assert_eq!(multi.mean_latency_us(), one.mean_latency_us());
            prop_assert_eq!(multi.iops(), one.iops());
        }
    }

    /// Under permanent backlog on every lane, WFQ grant counts converge
    /// to the configured weight ratios — for arbitrary weight vectors
    /// and arrival interleavings (derived from the seed).
    #[test]
    fn wfq_converges_to_weight_ratios(
        weights in prop::collection::vec(1u32..10, 2..5),
        seed in 0u64..u64::MAX,
    ) {
        let specs: Vec<TenantSpec> = weights
            .iter()
            .map(|&w| TenantSpec { weight: w, sla_p99_ns: 1_000_000, qd_limit: 64 })
            .collect();
        let mut arb = WeightedArbiter::new(&specs);
        // Keep every lane saturated; vary the refill order by seed so
        // arrival interleaving is arbitrary but reproducible.
        let n = weights.len() as u64;
        for i in 0..(n * 8) {
            let t = TenantId((seed.wrapping_add(i) % n) as u32);
            for r in 0..8u32 {
                arb.enqueue(t, i as u32 * 8 + r);
            }
        }
        let rounds: u64 = 4_000;
        let mut grants = vec![0u64; weights.len()];
        for i in 0..rounds {
            let (t, _) = arb.grant().expect("lanes stay backlogged");
            grants[t.index()] += 1;
            arb.complete(t);
            // Refill the granted lane so no lane ever drains.
            arb.enqueue(t, 1_000_000 + i as u32);
        }
        let total_w: u64 = weights.iter().map(|&w| w as u64).sum();
        for (i, &w) in weights.iter().enumerate() {
            let fair = rounds * w as u64 / total_w;
            let got = grants[i];
            // Integer virtual time grants within one quantum of fair
            // share per competing lane.
            let slack = 2 * weights.len() as u64 + 2;
            prop_assert!(
                got + slack >= fair && got <= fair + slack,
                "lane {i} (w{w}): {got} grants vs fair {fair} of {rounds}"
            );
        }
    }

    /// Partitioning one trace across k equal-weight tenants must not
    /// change how much work completes: the front door reorders
    /// admission, never loses or invents requests.
    #[test]
    fn completions_invariant_to_tenant_partitioning(
        trace in arb_trace(),
        k in 1usize..5,
    ) {
        let base = Array::new(small(), ManagementMode::Autonomic).run(&trace);
        let mut cfg = small();
        cfg.tenants = (0..k)
            .map(|_| TenantSpec { weight: 1, sla_p99_ns: 1_000_000, qd_limit: 512 })
            .collect();
        let split: Trace = trace
            .requests()
            .iter()
            .enumerate()
            .map(|(i, r)| r.owned_by(TenantId((i % k) as u32)))
            .collect();
        let part = Array::new(cfg, ManagementMode::Autonomic).run(&split);
        prop_assert_eq!(part.completed(), base.completed());
        prop_assert_eq!(part.completed(), trace.len() as u64);
        let per_lane: u64 = part.tenant_stats().iter().map(|t| t.completed).sum();
        prop_assert_eq!(per_lane, part.completed());
        prop_assert_eq!(part.tenant_stats().len(), k);
    }

    /// The volume address map's home placement is a bijection from
    /// chunks onto each copy group's `(array, local_chunk)` space, for
    /// arbitrary stripe/chunk/replica geometry — no two chunks collide,
    /// every placement inverts back, and copies never share an array.
    #[test]
    fn volume_home_placement_is_a_bijection(
        width in 1u32..7,
        replicas in 1u32..4,
        chunk_pages in 1u64..65,
        chunks in 1u64..300,
    ) {
        let m = VolumeMapper::from_geometry(width, replicas, chunk_pages, chunks);
        for copy in 0..replicas {
            let mut seen = std::collections::BTreeSet::new();
            for chunk in 0..chunks {
                let p = m.home(copy, chunk);
                // Copy j lives in its own array group [jW, (j+1)W).
                prop_assert_eq!(p.array / width, copy);
                prop_assert!(p.local_chunk < m.rows());
                prop_assert!(
                    seen.insert((p.array, p.local_chunk)),
                    "copy {} chunk {} collided", copy, chunk
                );
                prop_assert_eq!(
                    m.home_inverse(p.array, p.local_chunk),
                    Some((copy, chunk))
                );
            }
        }
        // The copies of one chunk land on `replicas` distinct arrays.
        for chunk in 0..chunks {
            let holders = m.holders(chunk);
            let distinct: std::collections::BTreeSet<_> = holders.iter().collect();
            prop_assert_eq!(distinct.len(), replicas as usize);
        }
    }

    /// Fragmenting an arbitrary `[lpn, lpn + pages)` run tiles it
    /// exactly: fragments are contiguous, in order, chunk-bounded, and
    /// their local LPNs stay inside the owning local chunk.
    #[test]
    fn volume_fragments_tile_the_request(
        width in 1u32..7,
        replicas in 1u32..4,
        chunk_pages in 1u64..65,
        chunks in 1u64..300,
        lpn_seed in 0u64..u64::MAX,
        pages in 1u32..129,
    ) {
        let m = VolumeMapper::from_geometry(width, replicas, chunk_pages, chunks);
        let pages = pages.min(m.volume_pages() as u32);
        let lpn = lpn_seed % (m.volume_pages() - pages as u64 + 1);
        let frags = m.fragments(LogicalPage(lpn), pages);
        let mut next = lpn;
        for f in &frags {
            prop_assert_eq!(f.chunk * chunk_pages + f.offset, next, "contiguous");
            prop_assert!(f.offset + f.pages as u64 <= chunk_pages, "chunk-bounded");
            for copy in 0..replicas {
                let p = m.placement(copy, f.chunk);
                let local = m.local_lpn(p, f.offset).0;
                prop_assert_eq!(local / chunk_pages, p.local_chunk);
            }
            next += f.pages as u64;
        }
        prop_assert_eq!(next, lpn + pages as u64, "tiles the whole run");
    }
}

/// A random, volume-bounded request stream for federation runs.
fn arb_volume_trace(volume_pages: u64) -> impl Strategy<Value = Trace> {
    let req = (
        0u64..2_000,
        1u32..9,
        0u64..volume_pages,
        prop::bool::weighted(0.7),
    )
        .prop_map(move |(at_us, pages, slot, is_read)| {
            let lpn = slot.min(volume_pages - pages as u64);
            TraceRequest::new(
                SimTime::from_us(at_us),
                if is_read { IoOp::Read } else { IoOp::Write },
                LogicalPage(lpn),
                pages,
            )
        });
    prop::collection::vec(req, 1..120).prop_map(Trace::new)
}

proptest! {
    // Federation runs simulate several member arrays per case; keep the
    // case count low so the suite stays quick.
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Partitioning one volume across more (or replicated) member
    /// arrays must not change how much work completes: the federation
    /// front door re-routes fragments, never loses or invents requests.
    #[test]
    fn federation_completions_invariant_to_array_partitioning(
        trace in arb_volume_trace(4_096),
    ) {
        let off = LaggardPolicy { sla_p99_ns: 0, ..LaggardPolicy::default() };
        for (width, replicas) in [(1u32, 1u32), (2, 1), (4, 1), (2, 2)] {
            let fed = Simulation::builder()
                .mode(ManagementMode::Autonomic)
                .with_federation(width * replicas)
                .volume(
                    VolumeSpec::replicated(width, replicas)
                        .chunk_pages(16)
                        .volume_pages(4_096),
                )
                .policy(off)
                .build()
                .expect("federation geometry validates");
            let run = fed.run_verified(&trace);
            prop_assert!(run.integrity.is_ok());
            let s = &run.report.stats;
            prop_assert_eq!(s.completed, trace.len() as u64,
                "{}x{}: completions drifted", width, replicas);
            prop_assert_eq!(s.lost_requests, 0u64);
            // Member completions sum to the fragment count.
            let member: u64 = run.report.arrays.iter().map(|r| r.completed()).sum();
            prop_assert_eq!(member, s.fragments);
        }
    }
}
