//! Cross-substrate integration: the FTL's allocation decisions must be
//! physically executable on the NAND packages (program order,
//! erase-before-write), and HAL-composed commands must validate on the
//! geometry they were composed for.

use proptest::prelude::*;

use triple_a::fimm::{Fimm, FimmAddr};
use triple_a::flash::{FlashCommand, FlashGeometry, FlashTiming, OpKind, PageAddr};
use triple_a::ftl::{hal, ArrayShape, Ftl, LogicalPage};
use triple_a::pcie::ClusterId;
use triple_a::sim::SimTime;

/// Replay every FTL write allocation as a real program op on real
/// packages: if the allocator ever violated NAND program order, the
/// package model rejects it.
#[test]
fn ftl_allocations_execute_on_real_packages() {
    let shape = ArrayShape::small_test();
    let mut ftl = Ftl::new(shape);
    let mut fimms: Vec<Vec<Fimm>> = (0..shape.topology.total_clusters())
        .map(|_| {
            (0..shape.fimms_per_cluster)
                .map(|_| Fimm::new(shape.packages_per_fimm, shape.flash, FlashTiming::default()))
                .collect()
        })
        .collect();

    // Interleave writes to many LPNs, with overwrites.
    for i in 0..5_000u64 {
        let lpn = LogicalPage((i * 37) % 2_000);
        let loc = ftl.write_alloc(lpn, None).unwrap();
        let g = shape.topology.global_index(loc.cluster) as usize;
        fimms[g][loc.fimm as usize]
            .begin_op(
                SimTime::from_us(i),
                loc.addr.package,
                &FlashCommand::program(loc.addr.page),
            )
            .unwrap_or_else(|e| panic!("allocation {i} physically invalid: {e}"));
    }
}

/// GC's rewrite + erase sequence must also be physically executable.
#[test]
fn gc_cycle_executes_on_real_packages() {
    let mut shape = ArrayShape::small_test();
    shape.flash.blocks_per_plane = 8;
    let mut ftl = Ftl::new(shape);
    let cluster = ClusterId::default();
    let mut fimm = Fimm::new(shape.packages_per_fimm, shape.flash, FlashTiming::default());

    fn program(t: &mut u64, fimm: &mut Fimm, addr: FimmAddr) {
        *t += 1;
        fimm.begin_op(
            SimTime::from_us(*t),
            addr.package,
            &FlashCommand::program(addr.page),
        )
        .expect("program order preserved");
    }

    // Overwrite a tiny working set until the FIMM needs GC.
    let mut t = 0u64;
    let home = ftl.locate(LogicalPage(0));
    for i in 0..20_000u64 {
        let lpn = LogicalPage((i % 32) * shape.fimms_per_cluster as u64);
        let loc = match ftl.write_alloc(lpn, Some((cluster, home.fimm))) {
            Ok(loc) => loc,
            Err(_) => {
                // Out of space: run one GC unit, then retry.
                let work = ftl.gc_pick(cluster, home.fimm).expect("victim exists");
                for l in work.valid.clone() {
                    if let Some(new_loc) = ftl.gc_rewrite(l, &work).unwrap() {
                        program(&mut t, &mut fimm, new_loc.addr);
                    }
                }
                fimm.begin_op(
                    SimTime::from_us(t),
                    work.package,
                    &FlashCommand::erase(PageAddr {
                        die: work.die,
                        plane: work.block % shape.flash.planes,
                        block: work.block,
                        page: 0,
                    }),
                )
                .expect("erase valid");
                ftl.gc_finish(&work);
                ftl.write_alloc(lpn, Some((cluster, home.fimm)))
                    .expect("write succeeds after GC")
            }
        };
        program(&mut t, &mut fimm, loc.addr);
    }
    assert!(ftl.stats().gc_erases > 0, "test never exercised GC");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any set of in-range pages composes into commands that validate
    /// against the geometry and cover exactly the input pages.
    #[test]
    fn hal_compose_is_valid_and_complete(
        raw in prop::collection::vec((0u32..8, 0u32..2, 0u32..128, 0u32..32), 1..9)
    ) {
        let geom = FlashGeometry::default();
        let pages: Vec<FimmAddr> = raw
            .into_iter()
            .map(|(pkg, die, block, page)| FimmAddr {
                package: pkg,
                page: PageAddr { die, plane: block % geom.planes, block, page },
            })
            .collect();
        let cmds = hal::compose(OpKind::Read, &pages);
        let mut covered = 0usize;
        for c in &cmds {
            prop_assert!(c.cmd.validate(&geom).is_ok(), "invalid: {:?}", c.cmd);
            covered += c.cmd.page_count();
        }
        prop_assert_eq!(covered, pages.len(), "pages lost or duplicated");
    }

    /// The FTL never hands out the same physical page twice without an
    /// intervening erase.
    #[test]
    fn ftl_never_double_allocates(ops in prop::collection::vec(0u64..512, 1..400)) {
        let shape = ArrayShape::small_test();
        let mut ftl = Ftl::new(shape);
        let mut seen = std::collections::HashSet::new();
        for lpn in ops {
            let loc = ftl.write_alloc(LogicalPage(lpn), None).unwrap();
            prop_assert!(
                seen.insert((shape.topology.global_index(loc.cluster), loc.fimm, loc.addr)),
                "physical page handed out twice: {loc}"
            );
        }
    }

    /// Page-map lookups always return locations inside the array.
    #[test]
    fn ftl_locations_always_in_shape(lpns in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let shape = ArrayShape::small_test();
        let ftl = Ftl::new(shape);
        let total = shape.total_pages();
        for lpn in lpns {
            let loc = ftl.locate(LogicalPage(lpn % total));
            prop_assert!(shape.contains(loc), "{loc} outside shape");
        }
    }
}
