//! Cross-crate integration tests: full traces through the whole stack
//! (workload generator → PCI-E fabric → FTL → FIMMs → NAND packages),
//! asserting the paper's qualitative results hold end to end.

use triple_a::core::{Array, ArrayConfig, ManagementMode};
use triple_a::workloads::{analyze, Microbench, ProfileTrace, WorkloadProfile};

fn small() -> ArrayConfig {
    ArrayConfig::small_test()
}

/// Validated variant of [`small`] for tests that tweak fields: routes
/// the edit through the cross-field-checking builder.
fn small_with(f: impl FnOnce(&mut ArrayConfig)) -> ArrayConfig {
    ArrayConfig::small_builder()
        .tune(f)
        .build()
        .expect("test configuration validates")
}

#[test]
fn hot_cluster_read_storm_full_paper_shape() {
    let cfg = small();
    let trace = Microbench::read()
        .hot_clusters(1)
        .requests(20_000)
        .gap_ns(1_400)
        .build(&cfg, 1);
    let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(&trace);
    let aaa = Array::new(cfg, ManagementMode::Autonomic).run(&trace);

    assert_eq!(base.completed(), 20_000);
    assert_eq!(aaa.completed(), 20_000);
    // Throughput: better than baseline; latency: dramatically better.
    assert!(
        aaa.iops() > base.iops() * 1.3,
        "iops {} vs {}",
        aaa.iops(),
        base.iops()
    );
    assert!(
        aaa.mean_latency_us() < base.mean_latency_us() * 0.25,
        "latency {} vs {}",
        aaa.mean_latency_us(),
        base.mean_latency_us()
    );
    // Link contention (the hot bus) nearly eliminated.
    assert!(aaa.avg_link_contention_us() < base.avg_link_contention_us() * 0.25);
    // Migration actually happened and stayed on the same switch.
    let stats = aaa.autonomic_stats();
    assert!(stats.migrations_started > 0);
    assert!(stats.pages_migrated > 0);
    let per = aaa.per_cluster_requests();
    let other_switch: u64 = per[4..].iter().sum();
    assert_eq!(other_switch, 0, "migration crossed a switch");
}

#[test]
fn uniform_workload_unaffected_by_autonomic_mode() {
    let cfg = small();
    let trace = Microbench::read()
        .hot_clusters(0)
        .requests(10_000)
        .gap_ns(1_000)
        .build(&cfg, 2);
    let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(&trace);
    let aaa = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
    // cfs/web in the paper: no hot clusters, no gain, but no harm either.
    let ratio = aaa.mean_latency_us() / base.mean_latency_us();
    assert!((0.9..1.1).contains(&ratio), "uniform ratio {ratio}");
}

#[test]
fn profile_trace_runs_end_to_end() {
    let cfg = small();
    for name in ["fin", "websql", "g-eigen"] {
        let profile = WorkloadProfile::by_name(name).unwrap();
        let trace = ProfileTrace::new(profile)
            .requests(5_000)
            .gap_ns(1_200)
            .build(&cfg, 3);
        let report = Array::new(cfg.clone(), ManagementMode::Autonomic).run(&trace);
        assert_eq!(report.completed(), 5_000, "{name}");
        let expect_reads = (5_000.0 * profile.read_ratio) as i64;
        assert!(
            (report.reads() as i64 - expect_reads).abs() < 250,
            "{name}: reads {} vs expected {expect_reads}",
            report.reads()
        );
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let cfg = small();
    let profile = WorkloadProfile::by_name("prxy").unwrap();
    let t1 = ProfileTrace::new(profile).requests(4_000).build(&cfg, 9);
    let t2 = ProfileTrace::new(profile).requests(4_000).build(&cfg, 9);
    assert_eq!(t1.requests(), t2.requests(), "generator deterministic");
    let a = Array::new(cfg.clone(), ManagementMode::Autonomic).run(&t1);
    let b = Array::new(cfg, ManagementMode::Autonomic).run(&t2);
    assert_eq!(a.events_processed(), b.events_processed());
    assert_eq!(a.mean_latency_us(), b.mean_latency_us());
    assert_eq!(a.ftl_stats(), b.ftl_stats());
    assert_eq!(
        a.autonomic_stats().pages_migrated,
        b.autonomic_stats().pages_migrated
    );
}

#[test]
fn migration_accounting_is_consistent() {
    let cfg = small();
    let trace = Microbench::read()
        .hot_clusters(2)
        .requests(15_000)
        .gap_ns(1_400)
        .build(&cfg, 4);
    let aaa = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
    let stats = aaa.autonomic_stats();
    // Every page the manager moved shows up as an FTL migration write.
    assert_eq!(
        stats.pages_migrated + stats.pages_reshaped,
        aaa.ftl_stats().migration_writes,
        "relocation accounting out of sync"
    );
    // Relocations-in match pages moved (no page lost in flight).
    let relocs_in: u64 = aaa.per_cluster_relocations_in().iter().sum();
    assert_eq!(relocs_in, aaa.ftl_stats().migration_writes);
    assert_eq!(stats.migrations_started, stats.migrations_completed);
}

#[test]
fn wear_and_gc_kick_in_under_sustained_overwrites() {
    // Tiny flash: hammer one small region with overwrites until GC runs.
    let cfg = small_with(|c| {
        c.shape.flash.blocks_per_plane = 8;
        c.gc_threshold_blocks = 64;
    });
    let trace = Microbench::write()
        .hot_clusters(1)
        .region_pages(64)
        .requests(30_000)
        .gap_ns(2_000)
        .build(&cfg, 5);
    let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
    assert_eq!(report.completed(), 30_000);
    assert!(report.ftl_stats().gc_erases > 0, "GC never ran");
    assert!(report.wear().total_erases > 0, "no wear recorded");
    // With a hot region this small, greedy GC usually finds fully
    // invalid victims (gc_writes == 0 is legitimate); the rewrite path
    // is exercised explicitly in tests/substrates.rs.
}

#[test]
fn trace_analysis_matches_array_census() {
    let cfg = small();
    let trace = Microbench::read()
        .hot_clusters(2)
        .requests(8_000)
        .gap_ns(2_000)
        .build(&cfg, 6);
    let stats = analyze(&trace, &cfg.shape);
    let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
    // The analyzer's census and the array's routing census agree: the
    // two hot clusters received everything.
    assert_eq!(stats.hot_clusters, 2);
    let per = report.per_cluster_requests();
    let nonzero = per.iter().filter(|&&c| c > 0).count();
    assert_eq!(nonzero, 2);
}
