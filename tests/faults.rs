//! Fault-injection integration tests: zero-rate transparency, seeded
//! determinism, degraded-mode operation under module death/slowdown,
//! migration rollback integrity, and an exhaustive abort-at-every-step
//! property over the clone-then-unlink migration protocol.

use proptest::prelude::*;

use triple_a::core::{
    Array, ArrayConfig, FaultConfig, FimmFaultEvent, FimmFaultKind, FlashFaultProfile,
    ManagementMode, PcieFaultProfile, PowerLossEvent,
};
use triple_a::ftl::{Ftl, LogicalPage};
use triple_a::pcie::ClusterId;
use triple_a::workloads::Microbench;

fn small() -> ArrayConfig {
    ArrayConfig::small_test()
}

/// Validated variant of [`small`] for tests that tweak fields: routes
/// the edit through the cross-field-checking builder.
fn small_with(f: impl FnOnce(&mut ArrayConfig)) -> ArrayConfig {
    ArrayConfig::small_builder()
        .tune(f)
        .build()
        .expect("test configuration validates")
}

fn hot_read_trace(cfg: &ArrayConfig) -> triple_a::core::Trace {
    Microbench::read()
        .hot_clusters(1)
        .requests(6_000)
        .gap_ns(1_400)
        .build(cfg, 31)
}

/// A quiet fault plan (all rates zero, no events) must not perturb the
/// simulation at all — byte-identical report, even with a nonzero seed.
#[test]
fn zero_rate_fault_config_is_transparent() {
    let plain = small();
    let mut seeded = small();
    seeded.faults = FaultConfig {
        seed: 0xDEAD_BEEF,
        ..FaultConfig::default()
    };
    assert!(seeded.faults.is_quiet());
    let trace = hot_read_trace(&plain);
    let a = Array::new(plain, ManagementMode::Autonomic).run(&trace);
    let b = Array::new(seeded, ManagementMode::Autonomic).run(&trace);
    assert_eq!(format!("{a}"), format!("{b}"));
    assert_eq!(a.events_processed(), b.events_processed());
    assert!(!b.fault_stats().any());
}

/// Same seed + same rates ⇒ identical faults ⇒ identical reports.
/// A different seed must (for these rates) fault differently.
#[test]
fn nonzero_fault_runs_are_deterministic() {
    let cfg = small_with(|c| {
        c.faults = FaultConfig {
            flash: FlashFaultProfile {
                read_transient_prob: 0.02,
                prog_fail_prob: 0.001,
                erase_fail_prob: 0.001,
            },
            pcie: PcieFaultProfile {
                corrupt_prob: 0.005,
                replay_ns: 600,
            },
            seed: 7,
            ..FaultConfig::default()
        };
    });
    let trace = hot_read_trace(&cfg);
    let a = Array::new(cfg.clone(), ManagementMode::Autonomic).run(&trace);
    let b = Array::new(cfg.clone(), ManagementMode::Autonomic).run(&trace);
    assert_eq!(format!("{a}"), format!("{b}"));
    assert_eq!(a.fault_stats(), b.fault_stats());
    assert!(a.fault_stats().any(), "rates this high must fault");

    let mut other = cfg;
    other.faults.seed = 8;
    let c = Array::new(other, ManagementMode::Autonomic).run(&trace);
    assert_ne!(
        format!("{a}"),
        format!("{c}"),
        "different fault seeds should perturb the run"
    );
}

/// Transient read faults burn die time and retry, but every request
/// still completes and the ECC-retry count is visible in the report.
#[test]
fn transient_read_faults_retry_and_complete() {
    let cfg = small_with(|c| {
        c.faults.flash.read_transient_prob = 0.05;
        c.faults.seed = 11;
    });
    let trace = hot_read_trace(&cfg);
    let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
    assert_eq!(report.completed(), trace.len() as u64);
    assert!(report.fault_stats().transient_read_faults > 0);
    assert_eq!(report.fault_stats().unserviceable_reads, 0);
}

/// A Slowdown fault on a hot FIMM makes it a laggard: Eq. 3 detection
/// must fire and reshaping move pages off the slow module.
#[test]
fn slowdown_fault_triggers_laggard_detection() {
    let cfg = small_with(|c| {
        c.faults = FaultConfig::default().with_fimm_event(FimmFaultEvent {
            cluster: 0,
            fimm: 0,
            at_ns: 200_000,
            kind: FimmFaultKind::Slowdown(8),
        });
    });
    let trace = hot_read_trace(&cfg);

    let faulty = Array::new(cfg.clone(), ManagementMode::Autonomic).run(&trace);
    let clean_cfg = small_with(|c| c.autonomic = cfg.autonomic);
    let clean = Array::new(clean_cfg, ManagementMode::Autonomic).run(&trace);

    assert_eq!(faulty.completed(), trace.len() as u64);
    assert_eq!(faulty.fault_stats().fimm_slowdowns, 1);
    assert!(
        faulty.autonomic_stats().laggard_detections > clean.autonomic_stats().laggard_detections,
        "slowdown x8 must add laggard detections: faulty {} vs clean {}",
        faulty.autonomic_stats().laggard_detections,
        clean.autonomic_stats().laggard_detections
    );
}

/// Killing one FIMM mid-run degrades reads onto its siblings; the run
/// still completes every request and the FTL metadata stays coherent.
#[test]
fn dead_fimm_degrades_reads_and_preserves_integrity() {
    let cfg = small_with(|c| {
        c.faults = FaultConfig::default().with_fimm_event(FimmFaultEvent {
            cluster: 0,
            fimm: 1,
            at_ns: 500_000,
            kind: FimmFaultKind::Dead,
        });
    });
    let trace = hot_read_trace(&cfg);
    let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
    assert_eq!(run.report.completed(), trace.len() as u64);
    assert_eq!(run.report.fault_stats().fimm_deaths, 1);
    assert!(run.report.fault_stats().degraded_reads > 0);
    run.integrity
        .expect("FTL metadata must stay coherent after a module death");
}

/// Program failures during relocation force migration rollback; the
/// end-to-end integrity check proves no page was lost or duplicated,
/// and the failed blocks are retired.
#[test]
fn program_failures_roll_back_migrations_without_losing_pages() {
    let cfg = small_with(|c| {
        c.faults.flash.prog_fail_prob = 0.01;
        c.faults.seed = 5;
    });
    let trace = Microbench::read()
        .hot_clusters(1)
        .requests(8_000)
        .gap_ns(1_300)
        .build(&cfg, 37);
    let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
    assert_eq!(run.report.completed(), trace.len() as u64);
    assert!(run.report.fault_stats().prog_failures > 0);
    assert!(run.report.fault_stats().blocks_retired_by_fault > 0);
    run.integrity
        .expect("no page lost or duplicated across fault rollbacks");
}

/// TLP corruption adds replay latency but never corrupts results: the
/// run completes, replays are counted, and the run stays deterministic.
#[test]
fn pcie_corruption_replays_and_completes() {
    let cfg = small_with(|c| {
        c.faults.pcie = PcieFaultProfile {
            corrupt_prob: 0.01,
            replay_ns: 800,
        };
        c.faults.seed = 13;
    });
    let trace = hot_read_trace(&cfg);
    let report = Array::new(cfg, ManagementMode::NonAutonomic).run(&trace);
    assert_eq!(report.completed(), trace.len() as u64);
    assert!(report.fault_stats().tlp_replays > 0);
}

/// Write-heavy trace so a power cut lands mid-write and the journal
/// replay has real mutations to recover.
fn hot_write_trace(cfg: &ArrayConfig) -> triple_a::core::Trace {
    Microbench::write()
        .hot_clusters(1)
        .requests(2_000)
        .gap_ns(1_400)
        .build(cfg, 53)
}

/// Runs a write burst with a power cut at `cut_ns`, then checks the
/// remount invariants: metadata coherent, every request completed or
/// accounted lost, and the cut visible in the recovery stats.
fn check_power_loss_at(cut_ns: u64) {
    let cfg = small_with(|c| {
        c.faults = FaultConfig::default().with_power_loss(PowerLossEvent::at(cut_ns));
    });
    let trace = hot_write_trace(&cfg);
    let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
    assert!(
        run.integrity.is_ok(),
        "journal replay must rebuild coherent metadata after a cut at {cut_ns}ns: {:?}",
        run.integrity
    );
    let rec = run.report.recovery_stats();
    assert_eq!(rec.power_losses, 1, "the scheduled cut must fire");
    assert_eq!(
        run.report.completed() + rec.lost_inflight_requests,
        trace.len() as u64,
        "every request must complete or be accounted lost"
    );
}

/// Runs a non-stationary scenario with a power cut at `cut_ns` and
/// checks the same remount invariants as [`check_power_loss_at`] — the
/// scenario shapes move the hot set and the arrival rate mid-run, so
/// the journal replay happens against a layout that is already being
/// chased by the autonomic machinery.
fn check_scenario_power_loss(scenario: &triple_a::workloads::ScenarioTrace, cut_ns: u64) {
    let cfg = small_with(|c| {
        c.faults = FaultConfig::default().with_power_loss(PowerLossEvent::at(cut_ns));
    });
    let trace = scenario.build(&cfg, 53);
    let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
    assert!(
        run.integrity.is_ok(),
        "{}: journal replay must rebuild coherent metadata after a cut at {cut_ns}ns: {:?}",
        scenario.name(),
        run.integrity
    );
    let rec = run.report.recovery_stats();
    assert_eq!(rec.power_losses, 1, "{}: the scheduled cut must fire", scenario.name());
    assert_eq!(
        run.report.completed() + rec.lost_inflight_requests,
        trace.len() as u64,
        "{}: every request must complete or be accounted lost",
        scenario.name()
    );
}

/// Power cut in the middle of a hot-spot-drift scenario: the hot set
/// has already rotated once when the cut lands, and rotates again after
/// the remount. Integrity must hold at every phase boundary and at
/// mid-phase instants.
#[test]
fn power_loss_mid_drift_scenario_recovers() {
    let profile = triple_a::workloads::WorkloadProfile::by_name("mds").expect("mds registered");
    let scenario = triple_a::workloads::ScenarioTrace::hotspot_drift(profile, 2_000, 1_400, 4);
    let starts = scenario.phase_starts_ns();
    // Mid-phase-2 (post-first-rotation) and exactly on a rotation edge.
    for cut_ns in [starts[1] + (starts[2] - starts[1]) / 2, starts[2]] {
        check_scenario_power_loss(&scenario, cut_ns);
    }
}

/// Power cut inside a flash-crowd burst: the journal is absorbing
/// writes concentrated on a single cluster when DRAM vanishes.
#[test]
fn power_loss_mid_flash_crowd_burst_recovers() {
    let profile = triple_a::workloads::WorkloadProfile::by_name("mds").expect("mds registered");
    let scenario = triple_a::workloads::ScenarioTrace::flash_crowd(profile, 2_000, 2_800, 700, 2);
    let starts = scenario.phase_starts_ns();
    // Phase 1 is the first crowd burst; cut in its middle, and again in
    // the calm stretch right after it.
    for cut_ns in [starts[1] + (starts[2] - starts[1]) / 2, starts[2] + 1_000] {
        check_scenario_power_loss(&scenario, cut_ns);
    }
}

/// A cut before the first submission finds nothing volatile to lose:
/// the array remounts into an empty journal and serves the whole trace.
#[test]
fn power_loss_at_time_zero_is_a_clean_remount() {
    check_power_loss_at(0);
}

/// A cut scheduled after the last completion still fires (the run
/// extends to it) but loses nothing.
#[test]
fn power_loss_after_the_burst_loses_nothing() {
    let cfg = small_with(|c| {
        c.faults = FaultConfig::default().with_power_loss(PowerLossEvent::at(1 << 40));
    });
    let trace = hot_write_trace(&cfg);
    let run = Array::new(cfg, ManagementMode::Autonomic).run_verified(&trace);
    run.integrity.expect("idle-time power loss recovers");
    let rec = run.report.recovery_stats();
    assert_eq!(rec.power_losses, 1);
    assert_eq!(rec.lost_inflight_requests, 0);
    assert_eq!(run.report.completed(), trace.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Power loss injected at an arbitrary instant across the whole
    /// write burst (and a little past it): wherever the cut lands —
    /// between any two events, mid-flight, mid-journal-batch — the
    /// remount must replay to coherent metadata and account for every
    /// request.
    #[test]
    fn power_loss_at_any_instant_recovers_consistently(
        cut_ns in 0u64..3_200_000,
    ) {
        check_power_loss_at(cut_ns);
    }

    /// Clone-then-unlink migration, aborted (or superseded by a host
    /// overwrite) at every possible step: whatever combination of
    /// prepare/abort/commit/overwrite happens per page, the map and the
    /// block tables must stay a bijection — no page lost, none duplicated.
    #[test]
    fn migration_abort_at_every_step_loses_nothing(
        n_pages in 1u64..48,
        abort_mask in 0u64..u64::MAX,
        overwrite_mask in 0u64..u64::MAX,
    ) {
        let shape = small().shape;
        let mut ftl = Ftl::new(shape);
        let src = ClusterId { switch: 0, index: 0 };
        let dst = ClusterId { switch: 1, index: 2 };

        // Seed every page with a real allocation on the source FIMM.
        let lpns: Vec<LogicalPage> = (0..n_pages).map(|i| LogicalPage(i * 7)).collect();
        for &l in &lpns {
            ftl.write_alloc(l, Some((src, 0))).expect("seed write fits");
        }

        for (i, &l) in lpns.iter().enumerate() {
            let old = ftl.locate(l);
            let clone = ftl.migrate_prepare(l, dst, 1).expect("clone fits");
            let overwritten = overwrite_mask >> (i % 64) & 1 == 1;
            if overwritten {
                // Host write lands mid-clone and supersedes the data.
                ftl.write_alloc(l, Some((src, 0))).expect("overwrite fits");
            }
            if abort_mask >> (i % 64) & 1 == 1 {
                // Copy failed mid-flight: roll back; mapping untouched.
                prop_assert!(ftl.migrate_abort(l, clone));
                prop_assert!(ftl.locate(l) != clone);
            } else {
                // Commit must refuse to clobber a newer host write.
                let committed = ftl.migrate_commit(l, clone, old);
                prop_assert_eq!(committed, !overwritten);
                prop_assert_eq!(ftl.locate(l) == clone, !overwritten);
            }
        }

        ftl.verify_integrity().expect("map <-> block tables stay a bijection");
    }
}
