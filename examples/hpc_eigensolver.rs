//! The paper's headline HPC scenario: the Eigensolver workload
//! (`g-eigen`), a read-dominated, highly skewed trace collected on
//! NERSC's Carver cluster, replayed on the full 4×16 (16 TB) array.
//!
//! The paper's §6.3 calls this out as Triple-A's best case: many hot
//! clusters, read-intensive, ≈98 % latency reduction.
//!
//! ```text
//! cargo run --release --example hpc_eigensolver
//! ```

use triple_a::core::{Array, ManagementMode};
use triple_a::workloads::{analyze, ProfileTrace, WorkloadProfile};

fn main() {
    let cfg = triple_a::core::ArrayConfig::paper_baseline();
    let profile = WorkloadProfile::by_name("g-eigen").expect("known profile");
    println!(
        "g-eigen: {:.0}% reads, {:.0}% random, {} hot clusters carrying {:.0}% of I/O",
        profile.read_ratio * 100.0,
        profile.read_randomness * 100.0,
        profile.hot_clusters,
        profile.hot_io_ratio * 100.0
    );

    let trace = ProfileTrace::new(profile)
        .requests(100_000)
        .gap_ns(200)
        .hot_region_pages(1_024)
        .build(&cfg, 7);
    let stats = analyze(&trace, &cfg.shape);
    println!(
        "synthetic trace: {} requests, {} hot clusters measured, {:.0}% hot I/O\n",
        stats.requests,
        stats.hot_clusters,
        stats.hot_io_ratio * 100.0
    );

    let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(&trace);
    let aaa = Array::new(cfg, ManagementMode::Autonomic).run(&trace);

    println!("                      baseline     triple-a");
    println!(
        "mean latency (us) {:>12.1} {:>12.1}",
        base.mean_latency_us(),
        aaa.mean_latency_us()
    );
    println!(
        "p99 latency (us)  {:>12.1} {:>12.1}",
        base.latency_percentile_us(0.99),
        aaa.latency_percentile_us(0.99)
    );
    println!(
        "IOPS              {:>12.0} {:>12.0}",
        base.iops(),
        aaa.iops()
    );
    println!(
        "link cont. (us)   {:>12.1} {:>12.1}",
        base.avg_link_contention_us(),
        aaa.avg_link_contention_us()
    );
    println!(
        "\nlatency cut: {:.0}%  (paper reports ~98% for g-eigen)",
        (1.0 - aaa.mean_latency_us() / base.mean_latency_us()) * 100.0
    );
    println!(
        "IOPS gain:   {:.2}x ({} migrations, {} pages moved)",
        aaa.iops() / base.iops(),
        aaa.autonomic_stats().migrations_started,
        aaa.autonomic_stats().pages_migrated
    );
}
