//! Quickstart: build a small all-flash array, hammer one hot cluster
//! with random reads, and compare the non-autonomic baseline against
//! Triple-A.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use triple_a::core::{Array, ArrayConfig, ManagementMode};
use triple_a::workloads::Microbench;

fn main() {
    // A 2x4 array (2 switches, 4 clusters each) with small flash
    // geometry — fast to simulate, same mechanics as the 16 TB baseline.
    let cfg = ArrayConfig::small_test();

    // 20k random 4 KB reads, all aimed at one cluster, at twice the
    // bandwidth its shared ONFi bus can sustain.
    let trace = Microbench::read()
        .hot_clusters(1)
        .requests(20_000)
        .gap_ns(1_400)
        .build(&cfg, 42);

    println!(
        "replaying {} requests through both arrays...\n",
        trace.len()
    );
    for mode in [ManagementMode::NonAutonomic, ManagementMode::Autonomic] {
        let report = Array::new(cfg.clone(), mode).run(&trace);
        println!("== {mode} ==");
        println!("  completed      : {}", report.completed());
        println!("  IOPS           : {:>10.0}", report.iops());
        println!("  mean latency   : {:>10.1} us", report.mean_latency_us());
        println!(
            "  p99 latency    : {:>10.1} us",
            report.latency_percentile_us(0.99)
        );
        println!(
            "  link contention: {:>10.1} us/req",
            report.avg_link_contention_us()
        );
        let auto = report.autonomic_stats();
        if auto.migrations_started > 0 {
            println!(
                "  autonomic      : {} migrations moved {} pages; {} reshaped",
                auto.migrations_started, auto.pages_migrated, auto.pages_reshaped
            );
        }
        println!();
    }
    println!("Triple-A detects the hot cluster (Eq. 1), picks cold siblings (Eq. 2),");
    println!("and reshapes the data layout in the background with shadow cloning.");
}
