//! Building custom array shapes: sweep the network width and flash
//! timing to explore where autonomic management pays off — the paper's
//! §8 "reconfigurable network-based all-flash array" direction.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use triple_a::core::{Array, ArrayConfig, ManagementMode};
use triple_a::flash::FlashTiming;
use triple_a::workloads::Microbench;

fn gain(cfg: ArrayConfig) -> (f64, f64) {
    let trace = Microbench::read()
        .hot_clusters(2)
        .same_switch()
        .requests(40_000)
        .gap_ns(830)
        .build(&cfg, 5);
    let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(&trace);
    let aaa = Array::new(cfg, ManagementMode::Autonomic).run(&trace);
    (
        aaa.iops() / base.iops().max(1e-9),
        aaa.mean_latency_us() / base.mean_latency_us().max(1e-9),
    )
}

fn main() {
    println!("two same-switch hot clusters, 1.6x bus overload each\n");

    println!("-- network width sweep (SLC flash) --");
    for cps in [4u32, 8, 16, 20] {
        let cfg = ArrayConfig::builder()
            .clusters_per_switch(cps)
            .build()
            .expect("valid topology");
        let (iops, lat) = gain(cfg);
        println!("  4x{cps:<3} IOPS gain {iops:5.2}x   latency ratio {lat:5.2}");
    }

    println!("\n-- flash generation sweep (4x16) --");
    for (name, timing) in [("slc", FlashTiming::default()), ("mlc", FlashTiming::mlc())] {
        let cfg = ArrayConfig::builder()
            .tune(|c| c.flash_timing = timing)
            .build()
            .expect("valid timing");
        let (iops, lat) = gain(cfg);
        println!("  {name:<4} IOPS gain {iops:5.2}x   latency ratio {lat:5.2}");
    }

    println!(
        "\nWider switches give migration more cold siblings; slower flash raises\n\
         the one-time cost of each migrated page (its program time)."
    );
}
