//! Burst-buffer scenario (paper §1: Argonne/Los Alamos use flash to
//! absorb check-pointing write bursts), demonstrating §6.6's *DRAM
//! relocation*: the DRAM removed from individual SSDs is aggregated at
//! the management module, so each cluster's write-back buffer is
//! DRAM-scale and absorbs bursts that a queue-scale buffer cannot.
//!
//! ```text
//! cargo run --release --example burst_buffer
//! ```

use triple_a::core::{Array, ArrayConfig, ManagementMode};
use triple_a::workloads::Microbench;

fn main() {
    // A checkpoint burst: 40k random 4 KB writes into two clusters at
    // ~1.3x their sustained program bandwidth.
    let base_cfg = ArrayConfig::paper_baseline();
    let trace = Microbench::write()
        .hot_clusters(2)
        .requests(40_000)
        .gap_ns(1_500)
        .build(&base_cfg, 3);
    println!("checkpoint burst: {} writes into 2 clusters\n", trace.len());

    for (label, buffer_pages) in [
        ("queue-scale buffer (64 pages)", 64usize),
        (
            "relocated-DRAM buffer (2048 pages, Triple-A default)",
            2_048,
        ),
    ] {
        let mut cfg = base_cfg.clone();
        cfg.write_buffer_pages = buffer_pages;
        println!("== {label} ==");
        for mode in [ManagementMode::NonAutonomic, ManagementMode::Autonomic] {
            let report = Array::new(cfg.clone(), mode).run(&trace);
            let auto = report.autonomic_stats();
            println!(
                "  {mode:<14} ack mean {:>9.1} us   p99 {:>9.1} us   redirects {}",
                report.mean_latency_us(),
                report.latency_percentile_us(0.99),
                auto.write_redirects
            );
        }
        println!();
    }
    println!("The relocated DRAM absorbs the burst (acks stay near-instant) while");
    println!("programs destage in the background; when the buffer is queue-scale,");
    println!("stalled writes appear and Triple-A redirects them to adjacent FIMMs.");
}
