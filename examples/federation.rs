//! Federation quickstart: one volume striped and replicated across four
//! Triple-A boxes, surviving a whole-array power loss mid-run.
//!
//! ```text
//! cargo run --release --example federation
//! ```
//!
//! The volume is a 2x2 geometry — two stripe columns, two replicas of
//! each — so every chunk lives on two member arrays. Array 0 loses
//! power 100 us into the run: reads routed to its replica are retried
//! on the surviving copy, writes complete degraded on the peers, and
//! the volume finishes with zero lost requests.

use triple_a::core::{
    FaultConfig, IoOp, ManagementMode, PowerLossEvent, Simulation, TraceRequest, VolumeSpec,
};
use triple_a::ftl::LogicalPage;
use triple_a::sim::{SimTime, SplitMix64};

fn main() {
    // 20k mixed requests against a 64k-page volume namespace: 4:1
    // read:write, runs of 1-8 pages so requests straddle chunk seams.
    let volume_pages = 64 * 1024u64;
    let mut rng = SplitMix64::new(42);
    let trace: triple_a::core::Trace = (0..20_000)
        .map(|i| {
            let op = if rng.next_below(5) == 0 {
                IoOp::Write
            } else {
                IoOp::Read
            };
            let pages = 1 + rng.next_below(8);
            let lpn = rng.next_below(volume_pages - pages);
            TraceRequest::new(
                SimTime::from_nanos(i as u64 * 500),
                op,
                LogicalPage(lpn),
                pages as u32,
            )
        })
        .collect();

    // Four small boxes federated into one 2-wide, 2-replica volume.
    // Array 0 alone gets a power cut 100 us in; its three peers keep
    // serving the other replica of every chunk it held.
    let fed = Simulation::builder()
        .mode(ManagementMode::Autonomic)
        .with_federation(4)
        .volume(
            VolumeSpec::replicated(2, 2)
                .chunk_pages(64)
                .volume_pages(volume_pages),
        )
        .array_faults(
            0,
            FaultConfig::default().with_power_loss(PowerLossEvent::at(100_000)),
        )
        .build()
        .expect("federation configuration validates");

    println!(
        "replaying {} volume requests over a 2x2 federation (array 0 cuts at t=100us)...\n",
        trace.len()
    );
    let run = fed.run_verified(&trace);
    run.integrity
        .expect("member-array FTL integrity survives the cut");
    let report = &run.report;
    println!("{report}");

    let s = &report.stats;
    assert_eq!(s.lost_requests, 0, "replication must hide the lost array");
    println!(
        "array 0 went down and came back: {} reads were retried on the\n\
         surviving replica, {} writes completed degraded, and the volume\n\
         finished all {} requests without losing one.",
        s.retried_reads, s.degraded_writes, s.completed
    );
}
