//! Enterprise OLTP scenario: the `websql` workload, whose four hot
//! clusters all hang off the *same* PCI-E switch — the paper's §6.1
//! worst case for Triple-A, because migration never crosses switches and
//! the pool of cold siblings is small.
//!
//! ```text
//! cargo run --release --example enterprise_oltp
//! ```

use triple_a::core::{Array, ArrayConfig, ManagementMode};
use triple_a::workloads::{ProfileTrace, WorkloadProfile};

fn report_line(label: &str, cfg: ArrayConfig, trace: &triple_a::core::Trace) {
    let base = Array::new(cfg.clone(), ManagementMode::NonAutonomic).run(trace);
    let aaa = Array::new(cfg.clone(), ManagementMode::Autonomic).run(trace);
    println!(
        "{label:<24} latency {:>8.1} -> {:>8.1} us ({:.2}x)   IOPS {:>9.0} -> {:>9.0} ({:.2}x)",
        base.mean_latency_us(),
        aaa.mean_latency_us(),
        aaa.mean_latency_us() / base.mean_latency_us(),
        base.iops(),
        aaa.iops(),
        aaa.iops() / base.iops()
    );
}

fn main() {
    let cfg = ArrayConfig::paper_baseline();
    let websql = WorkloadProfile::by_name("websql").expect("known profile");
    println!(
        "websql: {:.0}% reads, 4 hot clusters on ONE switch, {:.0}% hot I/O",
        websql.read_ratio * 100.0,
        websql.hot_io_ratio * 100.0
    );
    println!("(migration targets limited to the 12 same-switch siblings)\n");

    let trace = ProfileTrace::new(websql)
        .requests(100_000)
        .gap_ns(210)
        .hot_region_pages(1_024)
        .build(&cfg, 11);
    report_line("websql (same switch)", cfg.clone(), &trace);

    // Contrast with prn: two hot clusters on different switches.
    let prn = WorkloadProfile::by_name("prn").expect("known profile");
    let trace = ProfileTrace::new(prn)
        .requests(100_000)
        .gap_ns(425)
        .hot_region_pages(1_024)
        .build(&cfg, 11);
    report_line("prn (spread)", cfg, &trace);

    println!(
        "\nThe paper observes the same asymmetry (§6.1/§6.3): websql's gains are\n\
         capped by the per-switch imbalance, while spread workloads benefit fully."
    );
}
